"""Wire protocol of the distributed campaign runner.

One frame = an 8-byte big-endian length prefix followed by a pickled
message dict (``{"kind": ..., **fields}``).  :class:`FrameChannel` wraps a
connected socket with thread-safe framed send/recv — the worker's
heartbeat thread and its chunk-streaming main loop share one socket.

Fault injection lives here too, because the faults this tier must survive
are *frame* faults: :class:`FaultInjector` can drop, duplicate or delay
outgoing frames, kill the worker process after a number of result chunks
(mid-shard), or freeze the heartbeat thread while the worker keeps
computing (the zombie scenario).  Every decision is a pure function of
``(seed, frame kind, per-kind sequence number)`` — no wall clock, no
global RNG — so a chaos run replays the same fault pattern every time and
the chaos suite's recoveries are reproducible.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

_HEADER = struct.Struct(">Q")

#: Hard cap on one frame's payload; a corrupt length prefix must fail the
#: connection, not attempt a multi-terabyte allocation.
MAX_FRAME_BYTES = 1 << 31


class ProtocolError(ConnectionError):
    """A malformed frame (bad length prefix, truncated payload)."""


#: Frame kinds the injector targets by default: the worker's data plane.
_DEFAULT_CHAOS_KINDS = ("chunk", "done", "heartbeat")


@dataclass
class FaultInjector:
    """Seeded, deterministic frame/process fault injection.

    ``drop`` / ``dup`` / ``delay_p`` are per-frame probabilities applied to
    outgoing frames whose kind is in ``kinds``; ``delay`` is the sleep (in
    seconds) a delayed frame pays.  ``kill_after_chunks`` hard-exits the
    process (``os._exit(1)``, no cleanup — a real crash) right after that
    many result chunks were handed to the channel, i.e. mid-shard.
    ``freeze_heartbeats_after`` silences the heartbeat thread after that
    many beats while everything else keeps running — the zombie whose
    late chunks the coordinator's lease epochs must reject.

    Decisions hash ``(seed, kind, per-kind sequence, tag)``: frame #n of a
    kind meets the same fate in every run, independent of timing.
    """

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    delay_p: float = 0.0
    kill_after_chunks: Optional[int] = None
    freeze_heartbeats_after: Optional[int] = None
    kinds: Tuple[str, ...] = _DEFAULT_CHAOS_KINDS
    _counts: dict = field(default_factory=dict, repr=False, compare=False)
    _chunks_sent: int = field(default=0, repr=False, compare=False)
    _beats: int = field(default=0, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # Domain-separation tags for the per-frame uniform draws.
    _TAG_DROP = 0
    _TAG_DUP = 1
    _TAG_DELAY = 2

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "delay_p"):
            p = getattr(self, name)
            if not isinstance(p, (int, float)) or not math.isfinite(p):
                raise ValueError(f"{name} must be a finite number, got {p!r}")
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if (
            not isinstance(self.delay, (int, float))
            or not math.isfinite(self.delay)
            or self.delay < 0.0
        ):
            raise ValueError(f"delay must be >= 0 seconds, got {self.delay!r}")

    def _u(self, kind: str, seq: int, tag: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{kind}:{seq}:{tag}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") / 2**64

    def plan_send(self, kind: str) -> Tuple[int, float]:
        """``(copies, delay_seconds)`` for the next outgoing ``kind`` frame.

        ``copies == 0`` drops the frame on the floor (the peer never sees
        it), ``copies == 2`` duplicates it back to back.
        """
        if kind not in self.kinds:
            return 1, 0.0
        with self._lock:
            seq = self._counts.get(kind, 0)
            self._counts[kind] = seq + 1
        copies = 1
        if self.drop and self._u(kind, seq, self._TAG_DROP) < self.drop:
            copies = 0
        elif self.dup and self._u(kind, seq, self._TAG_DUP) < self.dup:
            copies = 2
        wait = 0.0
        if self.delay_p and self._u(kind, seq, self._TAG_DELAY) < self.delay_p:
            wait = self.delay
        return copies, wait

    def on_chunk_sent(self) -> None:
        """Count one streamed result chunk; kill the process on schedule."""
        with self._lock:
            self._chunks_sent += 1
            n = self._chunks_sent
        if self.kill_after_chunks is not None and n >= self.kill_after_chunks:
            os._exit(1)

    def heartbeat_allowed(self) -> bool:
        """Whether the next heartbeat may be sent (False once frozen)."""
        with self._lock:
            self._beats += 1
            n = self._beats
        if self.freeze_heartbeats_after is None:
            return True
        return n <= self.freeze_heartbeats_after

    # ------------------------------------------------------------------
    # Spec round-trip (worker subprocesses receive theirs via env var)
    # ------------------------------------------------------------------
    def to_spec(self) -> str:
        """A ``key=value,...`` spec string reconstructing this injector."""
        parts = [f"seed={self.seed}"]
        for name in ("drop", "dup", "delay", "delay_p"):
            v = getattr(self, name)
            if v:
                parts.append(f"{name}={v!r}")
        if self.kill_after_chunks is not None:
            parts.append(f"kill_after_chunks={self.kill_after_chunks}")
        if self.freeze_heartbeats_after is not None:
            parts.append(
                f"freeze_heartbeats_after={self.freeze_heartbeats_after}"
            )
        if tuple(self.kinds) != _DEFAULT_CHAOS_KINDS:
            parts.append("kinds=" + "+".join(self.kinds))
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse a :meth:`to_spec` string (``REPRO_DIST_CHAOS``)."""
        kwargs: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad chaos spec item {item!r}; expected key=value"
                )
            key, value = item.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key == "kinds":
                kwargs[key] = tuple(k for k in value.split("+") if k)
            elif key in ("seed", "kill_after_chunks", "freeze_heartbeats_after"):
                kwargs[key] = int(value)
            elif key in ("drop", "dup", "delay", "delay_p"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """The worker-side injector from ``REPRO_DIST_CHAOS``, if set."""
        spec = os.environ.get("REPRO_DIST_CHAOS")
        return cls.from_spec(spec) if spec else None


class FrameChannel:
    """Thread-safe framed pickle messages over one connected socket.

    ``send`` may be called from several threads (the worker's main loop
    and its heartbeat thread share the socket); frames never interleave
    because the length-prefix + payload write happens as one locked
    ``sendall``.  ``recv`` is single-consumer.
    """

    def __init__(
        self, sock: socket.socket, injector: Optional[FaultInjector] = None
    ) -> None:
        self.sock = sock
        self.injector = injector
        self._send_lock = threading.Lock()
        self._rfile = sock.makefile("rb")

    def send(self, kind: str, **fields) -> None:
        """Frame and send one message (subject to fault injection)."""
        payload = pickle.dumps(
            {"kind": kind, **fields}, protocol=pickle.HIGHEST_PROTOCOL
        )
        copies, wait = (
            (1, 0.0)
            if self.injector is None
            else self.injector.plan_send(kind)
        )
        if wait:
            time.sleep(wait)
        if copies == 0:
            return  # injected drop: the peer never hears this frame
        frame = _HEADER.pack(len(payload)) + payload
        with self._send_lock:
            for _ in range(copies):
                self.sock.sendall(frame)

    def recv(self) -> dict:
        """Read one message; raises ``ConnectionError`` on EOF/teardown."""
        header = self._read_exact(_HEADER.size)
        (n,) = _HEADER.unpack(header)
        if n > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {n} exceeds cap")
        msg = pickle.loads(self._read_exact(n))
        if not isinstance(msg, dict) or "kind" not in msg:
            raise ProtocolError(f"malformed message: {msg!r}")
        return msg

    def _read_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            try:
                part = self._rfile.read(n - len(buf))
            except (OSError, ValueError) as exc:
                raise ConnectionError(f"read failed: {exc}") from exc
            if not part:
                raise ConnectionError("connection closed mid-frame")
            buf.extend(part)
        return bytes(buf)

    def close(self) -> None:
        for closer in (
            lambda: self.sock.shutdown(socket.SHUT_RDWR),
            self._rfile.close,
            self.sock.close,
        ):
            try:
                closer()
            except OSError:
                pass


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (for the CLI)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be host:port, got {text!r}")
    return host, int(port)
