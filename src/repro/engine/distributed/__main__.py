"""CLI for the distributed campaign runner.

Worker (join a campaign from any machine that can reach the coordinator):

    python -m repro.engine.distributed worker --connect 127.0.0.1:7077

Coordinator (the two-terminal demo: builds a seeded environment, waits
for workers, runs a Hybrid-TNN campaign and prints the stats):

    python -m repro.engine.distributed coordinator --bind 127.0.0.1:7077 \\
        --queries 10000 --points 2000

Both sides derive everything else from the coordinator's campaign
payload; the worker needs no dataset, no seeds, no flags beyond the
address.  ``REPRO_DIST_CHAOS`` (see ``protocol.FaultInjector``) arms a
worker with deterministic fault injection for chaos testing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine.distributed.protocol import FaultInjector, parse_address
from repro.engine.distributed.worker import run_worker


def _cmd_worker(args: argparse.Namespace) -> int:
    injector = FaultInjector.from_env()
    clean = run_worker(
        parse_address(args.connect),
        name=args.name,
        retry_timeout=args.retry_timeout,
        injector=injector,
    )
    return 0 if clean else 1


def _cmd_coordinator(args: argparse.Namespace) -> int:
    # Deferred imports: the worker subcommand must start fast, it is
    # spawned in bulk by benchmarks and the chaos suite.
    from repro.broadcast import SystemParameters
    from repro.core.double import DoubleNN
    from repro.core.environment import TNNEnvironment
    from repro.core.hybrid import HybridNN
    from repro.datasets import sized_uniform
    from repro.engine.distributed.coordinator import (
        CampaignConfig,
        CampaignCoordinator,
    )
    from repro.engine.workload import QueryWorkload

    env = TNNEnvironment.build(
        sized_uniform(args.points, seed=1),
        sized_uniform(args.points, seed=2),
        params=SystemParameters(page_capacity=args.page_capacity),
    )
    workload = QueryWorkload(args.queries, seed=args.seed)
    algorithm = HybridNN() if args.algorithm == "hybrid" else DoubleNN()
    config = CampaignConfig(worker_wait=args.worker_wait)
    coordinator = CampaignCoordinator(
        env,
        workload.queries(env),
        algorithm,
        bind=parse_address(args.bind),
        config=config,
        record_log=False,
        workload_spec=(args.queries, args.seed),
    )
    with coordinator:
        host, port = coordinator.address
        print(f"coordinator listening on {host}:{port}", file=sys.stderr)
        outcome = coordinator.run()
    print(json.dumps(outcome.stats, indent=2))
    return 0


def main(argv=None) -> int:
    cli = argparse.ArgumentParser(
        prog="python -m repro.engine.distributed",
        description=__doc__.splitlines()[0],
    )
    sub = cli.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="join a campaign as a worker")
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    worker.add_argument("--name", default="worker", help="worker label")
    worker.add_argument(
        "--retry-timeout", type=float, default=30.0,
        help="seconds to keep retrying (re)connection (default %(default)s)",
    )
    worker.set_defaults(fn=_cmd_worker)

    coord = sub.add_parser(
        "coordinator", help="run a demo campaign coordinator"
    )
    coord.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="listen address (default %(default)s; port 0 picks a free one)",
    )
    coord.add_argument("--queries", type=int, default=10_000)
    coord.add_argument("--points", type=int, default=2_000)
    coord.add_argument("--seed", type=int, default=5)
    coord.add_argument("--page-capacity", type=int, default=64)
    coord.add_argument(
        "--algorithm", choices=("hybrid", "double"), default="hybrid"
    )
    coord.add_argument(
        "--worker-wait", type=float, default=30.0,
        help="seconds to wait for workers before degrading locally",
    )
    coord.set_defaults(fn=_cmd_coordinator)

    args = cli.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
