"""Campaign worker: connect, lease shards, stream result chunks back.

A worker is stateless beyond its TCP connection: everything it needs —
the pickled environment, the workload spec, the algorithm, the chunk and
heartbeat cadence — arrives in the coordinator's ``welcome`` frame, so
``python -m repro.engine.distributed worker --connect HOST:PORT`` on any
machine with this package is a full-fledged campaign participant.

Robustness on this side of the socket:

* **Connect retry with jitter** — the worker may start before the
  coordinator (the two-terminal quickstart does exactly that); connection
  attempts back off exponentially with a seeded multiplicative jitter so
  a restarted fleet does not reconnect in lockstep.
* **Heartbeats** — a daemon thread beats every ``heartbeat_interval``
  seconds on the shared (locked) channel; the coordinator's miss budget
  turns silence into lease revocation.
* **Chunked streaming** — a leased slice is executed as consecutive
  shared-scan sub-batches of ``chunk_size`` queries, each streamed back
  as soon as it finishes.  Shared-scan results are bit-identical to the
  per-query oracle *regardless of batch composition*, so chunk size and
  lease boundaries never change an answer — only when it arrives.
* **Session retry** — a dropped connection tears the session down and
  reconnects from hello (fresh registration, fresh leases) until the
  retry budget is spent; the coordinator reshards whatever this worker
  was holding.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Optional, Tuple

from repro.engine.distributed.protocol import FaultInjector, FrameChannel
from repro.engine.shared_scan import execute_tnn_batch
from repro.geometry import kernels


def _connect_with_retry(
    address: Tuple[str, int],
    deadline: float,
    rng: random.Random,
    attempt_timeout: float = 2.0,
) -> socket.socket:
    """Dial until it works or the budget runs out (exponential + jitter)."""
    backoff = 0.05
    while True:
        try:
            sock = socket.create_connection(address, timeout=attempt_timeout)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            now = time.monotonic()
            if now >= deadline:
                raise ConnectionError(
                    f"could not reach coordinator at {address[0]}:{address[1]}"
                )
            # Jittered exponential backoff: 0.5x-1.5x of the nominal wait,
            # so a restarted worker fleet spreads its reconnections.
            time.sleep(min(backoff, deadline - now) * rng.uniform(0.5, 1.5))
            backoff = min(backoff * 2, 2.0)


def _heartbeat_loop(
    channel: FrameChannel,
    interval: float,
    stop: threading.Event,
    injector: Optional[FaultInjector],
) -> None:
    while not stop.wait(interval):
        if injector is not None and not injector.heartbeat_allowed():
            # Frozen heartbeats: the thread stays up but goes silent —
            # the zombie the coordinator must declare dead by miss budget.
            continue
        try:
            channel.send("heartbeat")
        except (ConnectionError, OSError):
            return


def _serve_session(
    channel: FrameChannel,
    name: str,
    injector: Optional[FaultInjector],
) -> bool:
    """One hello-to-shutdown session; returns True on clean shutdown."""
    channel.send("hello", name=name)
    welcome = channel.recv()
    if welcome["kind"] != "welcome":
        raise ConnectionError(f"expected welcome, got {welcome['kind']!r}")
    env = welcome["env"]
    algorithm = welcome["algorithm"]
    record_log = welcome["record_log"]
    chunk_size = welcome["chunk_size"]
    if welcome["workload_spec"] is not None:
        from repro.engine.workload import QueryWorkload

        n_queries, seed = welcome["workload_spec"]
        queries = QueryWorkload(n_queries, seed=seed).queries(env)
    else:
        queries = welcome["queries"]
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(channel, welcome["heartbeat_interval"], stop, injector),
        daemon=True,
    )
    beat.start()
    try:
        with kernels.use_kernels(welcome["kernels_enabled"]):
            while True:
                channel.send("ready")
                msg = channel.recv()
                kind = msg["kind"]
                if kind == "shutdown":
                    channel.send("goodbye")
                    return True
                if kind == "idle":
                    time.sleep(msg.get("poll", 0.05))
                    continue
                if kind != "lease":
                    continue
                _run_lease(
                    channel, env, algorithm, queries, msg,
                    chunk_size, record_log, injector,
                )
    finally:
        stop.set()


def _run_lease(
    channel: FrameChannel,
    env,
    algorithm,
    queries,
    lease: dict,
    chunk_size: int,
    record_log: bool,
    injector: Optional[FaultInjector],
) -> None:
    """Execute one leased slice as streamed shared-scan sub-batches."""
    indices = lease["indices"]
    for at in range(0, len(indices), chunk_size):
        chunk = indices[at : at + chunk_size]
        t0 = time.perf_counter()
        results = execute_tnn_batch(
            env,
            algorithm,
            [queries[i] for i in chunk],
            record_log=record_log,
        )
        channel.send(
            "chunk",
            shard=lease["shard"],
            epoch=lease["epoch"],
            pairs=list(zip(chunk, results)),
            seconds=time.perf_counter() - t0,
        )
        if injector is not None:
            injector.on_chunk_sent()  # chaos: may os._exit mid-shard
    channel.send("done", shard=lease["shard"], epoch=lease["epoch"])


def run_worker(
    address: Tuple[str, int],
    *,
    name: str = "worker",
    retry_timeout: float = 30.0,
    injector: Optional[FaultInjector] = None,
) -> bool:
    """Serve campaigns at ``address`` until shutdown or retry exhaustion.

    Returns True after a clean coordinator-issued shutdown, False when
    the retry budget expired without reaching (or re-reaching) a
    coordinator.  Tests run this in a thread; the CLI runs it as the
    process main.  ``injector`` arms the deterministic chaos hooks.
    """
    deadline = time.monotonic() + retry_timeout
    rng = random.Random(f"{name}:{retry_timeout}")
    while True:
        try:
            sock = _connect_with_retry(address, deadline, rng)
        except ConnectionError:
            return False
        # A successful dial refreshes the retry budget: mid-campaign
        # disconnections get a full window to find the coordinator again,
        # however long the campaign has already been running.
        deadline = time.monotonic() + retry_timeout
        channel = FrameChannel(sock, injector=injector)
        try:
            if _serve_session(channel, name, injector):
                return True
        except (ConnectionError, EOFError, OSError):
            pass  # session died: reconnect while the budget lasts
        finally:
            channel.close()
        if time.monotonic() >= deadline:
            return False
