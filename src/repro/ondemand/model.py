"""The on-demand TNN server and its queueing-theoretic response time."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.environment import TNNEnvironment
from repro.geometry import Point
from repro.rtree import tnn_oracle


def mm1_response_time(service_time: float, utilisation: float) -> float:
    """Expected M/M/1 response time ``service / (1 - rho)``.

    ``utilisation`` is the server load ``rho = lambda * service_time`` in
    [0, 1); at ``rho -> 1`` the response time diverges — the cliff that
    broadcast access never hits.
    """
    if service_time <= 0:
        raise ValueError(f"service time must be positive, got {service_time}")
    if not 0.0 <= utilisation < 1.0:
        raise ValueError(f"utilisation must be in [0, 1), got {utilisation}")
    return service_time / (1.0 - utilisation)


@dataclass(frozen=True)
class OnDemandParameters:
    """Costs of the point-to-point exchange, in page-time units.

    * ``uplink_pages`` — transmitting the query to the server;
    * ``service_pages`` — the server's per-query processing time;
    * ``downlink_pages`` — shipping the answer pair back;
    * ``query_rate`` — each client's query arrival rate, in queries per
      page-time (drives server utilisation as clients multiply).
    """

    uplink_pages: float = 1.0
    service_pages: float = 4.0
    downlink_pages: float = 2.0
    query_rate: float = 0.001

    def utilisation(self, n_clients: int) -> float:
        """Server load with ``n_clients`` independent Poisson clients."""
        if n_clients < 0:
            raise ValueError("client count cannot be negative")
        return n_clients * self.query_rate * self.service_pages


@dataclass
class OnDemandResult:
    """Answer and cost metrics of one on-demand TNN query."""

    query: Point
    s: Point
    r: Point
    distance: float
    #: Pages elapsed: uplink + queueing + service + downlink.
    access_time: float
    #: Pages the client radio was active: its own uplink + downlink.
    tune_in_time: float
    server_utilisation: float


class OnDemandTNN:
    """An exact TNN server reached over a dedicated channel.

    The server holds both R-trees in memory and answers exactly (random
    access is free server-side); the client's costs are pure
    communication.  Raises :class:`ValueError` when the requested load
    saturates the server.
    """

    name = "on-demand"

    def __init__(
        self,
        env: TNNEnvironment,
        params: Optional[OnDemandParameters] = None,
    ) -> None:
        self.env = env
        self.params = params or OnDemandParameters()

    def run(self, query: Point, n_clients: int = 1) -> OnDemandResult:
        """Answer one query with ``n_clients`` concurrently active users."""
        rho = self.params.utilisation(n_clients)
        if rho >= 1.0:
            raise ValueError(
                f"server saturated: utilisation {rho:.2f} with "
                f"{n_clients} clients"
            )
        s, r, dist = tnn_oracle(query, self.env.s_tree, self.env.r_tree)
        response = mm1_response_time(self.params.service_pages, rho)
        access = self.params.uplink_pages + response + self.params.downlink_pages
        tune_in = self.params.uplink_pages + self.params.downlink_pages
        return OnDemandResult(
            query=query,
            s=s,
            r=r,
            distance=dist,
            access_time=access,
            tune_in_time=tune_in,
            server_utilisation=rho,
        )

    def max_clients(self) -> int:
        """Largest client population the server can sustain (rho < 1)."""
        per_client = self.params.query_rate * self.params.service_pages
        if per_client <= 0:
            return 2**31 - 1
        return max(0, math.ceil(1.0 / per_client) - 1)
