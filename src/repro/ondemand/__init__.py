"""On-demand (point-to-point) access — the paper's comparison access mode.

Section 2.1 contrasts two information-access mechanisms: **broadcast**
(this library's main subject) and **on-demand**, where each client sends
its query to the server over a dedicated channel and the server answers it
directly.  On-demand gives unbeatable latency for one client but the
server's capacity is finite: response time degrades as concurrent clients
multiply, while broadcast serves an arbitrary audience at constant cost —
the scalability argument that motivates the whole line of work.

This package models the on-demand side: an exact in-memory TNN server plus
an M/M/1 queueing model for the load-dependent response time.
"""

from repro.ondemand.model import (
    OnDemandParameters,
    OnDemandResult,
    OnDemandTNN,
    mm1_response_time,
)

__all__ = [
    "OnDemandParameters",
    "OnDemandResult",
    "OnDemandTNN",
    "mm1_response_time",
]
