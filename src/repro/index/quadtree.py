"""Region-quadtree air index, padded to a balanced page tree.

The second classic air-index alternative: recursively split the region
into four equal quadrants until a cell's points fit one leaf page.  A raw
region quadtree is unbalanced (dense areas subdivide deeper), but the
whole client stack — the paper's DFS broadcast order, the arrival-frontier
queue bound, the kernels' packed fan-outs — assumes every leaf sits at
level 0.  The builder therefore *pads* shallow branches with single-child
directory pages until all branches reach the deepest quadrant's height.
Padding pages are real broadcast pages (they cost index slots and
downloads), which faithfully models the known weakness of hierarchical
space partitioning on air: skewed data buys deep, thin index chains.

Two page-capacity accommodations:

* a quadrant split produces up to four children, but the paper's 64-byte
  pages hold only ``M = 3`` entries — sibling quadrants are re-grouped
  into runs of at most ``fanout`` children, adding one directory level
  when ``fanout < 4``;
* directory MBRs are tight around their contents rather than the nominal
  quadrant rectangles (strictly better pruning, same structure), so
  :meth:`repro.rtree.tree.RTree.validate` invariants hold verbatim.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import Point, Rect
from repro.index.packed import prepare_packed_arrays
from repro.rtree.node import RTreeNode
from repro.rtree.packing import _chunks, _linear_group_nodes, _pack_upward, _validate
from repro.rtree.tree import RTree

#: Subdivision stops at this depth regardless of occupancy, so duplicate
#: (or near-duplicate) points cannot recurse forever; the overflowing cell
#: falls back to a run of chained leaf pages.
DEFAULT_MAX_DEPTH = 16


def quadtree_pack(
    points: Sequence[Point],
    leaf_capacity: int,
    fanout: int,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> RTree:
    """Build a region-quadtree air index over ``points``."""
    _validate(points, leaf_capacity, fanout)
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    region = Rect.from_points(points)
    root = _build(list(points), region, leaf_capacity, fanout, max_depth)
    return prepare_packed_arrays(
        RTree(root=root, leaf_capacity=leaf_capacity, fanout=fanout, size=len(points))
    )


def _build(
    points: List[Point],
    cell: Rect,
    leaf_capacity: int,
    fanout: int,
    depth_left: int,
) -> RTreeNode:
    """One quadrant's balanced subtree."""
    if len(points) <= leaf_capacity or depth_left == 0 or not _splittable(cell):
        ordered = sorted(points, key=lambda p: (p.y, p.x))
        leaves = [
            RTreeNode.leaf(run) for run in _chunks(ordered, leaf_capacity)
        ]
        return _pack_upward(leaves, fanout, _linear_group_nodes)
    midx = (cell.xmin + cell.xmax) / 2.0
    midy = (cell.ymin + cell.ymax) / 2.0
    quads: List[List[Point]] = [[], [], [], []]
    for p in points:
        quads[(2 if p.y >= midy else 0) + (1 if p.x >= midx else 0)].append(p)
    rects = (
        Rect(cell.xmin, cell.ymin, midx, midy),  # SW
        Rect(midx, cell.ymin, cell.xmax, midy),  # SE
        Rect(cell.xmin, midy, midx, cell.ymax),  # NW
        Rect(midx, midy, cell.xmax, cell.ymax),  # NE
    )
    children = [
        _build(q, r, leaf_capacity, fanout, depth_left - 1)
        for q, r in zip(quads, rects)
        if q
    ]
    if len(children) == 1:
        # Every point fell into one quadrant: no directory page is needed
        # (the recursion already narrowed the cell), and skipping it keeps
        # padding chains as short as the data allows.
        return children[0]
    # Sibling quadrants may have subdivided to different depths; pad the
    # shallow ones with single-child directory chains so the grouped
    # parent sees one uniform level (the balance invariant every client
    # component assumes).
    top = max(c.level for c in children)
    children = [_lift(c, top) for c in children]
    return _pack_upward(children, fanout, _linear_group_nodes)


def _lift(node: RTreeNode, level: int) -> RTreeNode:
    """Wrap ``node`` in single-child directory pages up to ``level``."""
    while node.level < level:
        node = RTreeNode.internal([node])
    return node


def _splittable(cell: Rect) -> bool:
    """False once a cell is too small for midpoints to separate points."""
    midx = (cell.xmin + cell.xmax) / 2.0
    midy = (cell.ymin + cell.ymax) / 2.0
    return (cell.xmin < midx < cell.xmax) or (cell.ymin < midy < cell.ymax)
