"""Fixed-grid air index: cell-bucketed leaves packed into a page tree.

The classic alternative to a broadcast R-tree (Zheng et al.'s grid-based
air indexes): the region is cut into a ``G x G`` grid of equal cells, every
data point is bucketed into its cell, and the broadcast index enumerates
the cells in row-major order.  Here the grid is materialised as a balanced
page tree so the entire client stack (arrival frontiers, shared-scan
executor, geometry kernels) works unchanged:

* each non-empty cell's points become one run of leaf pages (at most
  ``leaf_capacity`` points each, tight MBRs);
* leaves are packed upward level by level in row-major cell order, at most
  ``fanout`` children per directory page.

The difference from an R-tree is purely the *partitioning*: grid cells
ignore the data distribution, so cell MBRs of skewed data overlap badly
and directory pages prune worse — exactly the trade-off the air-index
matrix benchmark measures.  Directory MBRs are tight around their
contents (not the nominal cell rectangles), which only improves pruning
and keeps the structural invariants of :meth:`repro.rtree.tree
.RTree.validate` intact.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.geometry import Point, Rect
from repro.index.packed import prepare_packed_arrays
from repro.rtree.node import RTreeNode
from repro.rtree.packing import _chunks, _linear_group_nodes, _pack_upward, _validate
from repro.rtree.tree import RTree


def default_grid_cells(n_points: int, leaf_capacity: int) -> int:
    """Grid side length aiming at roughly one leaf page per cell."""
    return max(1, math.ceil(math.sqrt(math.ceil(n_points / leaf_capacity))))


def grid_pack(
    points: Sequence[Point],
    leaf_capacity: int,
    fanout: int,
    cells: Optional[int] = None,
) -> RTree:
    """Build a fixed-grid air index over ``points``.

    ``cells`` is the grid side length ``G`` (default: enough cells for
    roughly one leaf page per cell).  Points exactly on a cell boundary
    belong to the higher cell, and the last row/column absorbs the region
    edge, so every point lands in exactly one cell.  Within a cell, points
    keep ``(y, x)`` order so leaf runs are spatially coherent.
    """
    _validate(points, leaf_capacity, fanout)
    g = default_grid_cells(len(points), leaf_capacity) if cells is None else cells
    if g < 1:
        raise ValueError(f"grid must have at least one cell per side, got {g}")
    region = Rect.from_points(points)
    w = region.width or 1.0
    h = region.height or 1.0
    buckets: List[List[Point]] = [[] for _ in range(g * g)]
    for p in points:
        col = min(int((p.x - region.xmin) / w * g), g - 1)
        row = min(int((p.y - region.ymin) / h * g), g - 1)
        buckets[row * g + col].append(p)
    leaves: List[RTreeNode] = []
    for bucket in buckets:
        if not bucket:
            continue
        bucket.sort(key=lambda p: (p.y, p.x))
        leaves.extend(
            RTreeNode.leaf(run) for run in _chunks(bucket, leaf_capacity)
        )
    root = _pack_upward(leaves, fanout, _linear_group_nodes)
    return prepare_packed_arrays(
        RTree(root=root, leaf_capacity=leaf_capacity, fanout=fanout, size=len(points))
    )
