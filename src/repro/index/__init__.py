"""Layout-agnostic air-index substrate.

The geometry kernels (:mod:`repro.geometry.kernels`) consume one *packed*
representation of an index node's fan-out — contiguous child-MBR /
subtree-count / page-id arrays for internal nodes, a contiguous point
array for leaves — regardless of which spatial partitioning produced the
node.  This package owns that representation (:mod:`repro.index.packed`)
and the non-R-tree air-index builders that emit it:

* :mod:`repro.index.grid` — a fixed-grid air index (cell-bucketed
  leaves packed upward in row-major cell order);
* :mod:`repro.index.quadtree` — a region-quadtree air index (recursive
  four-way subdivision, padded to a balanced page tree).

Both builders return plain :class:`~repro.rtree.tree.RTree` containers, so
the entire client stack — arrival frontiers, the shared-scan executor, the
geometry kernels — works on them unchanged; only the broadcast layout
(:mod:`repro.broadcast.layout`) knows which backend built the index.

Submodule imports are deliberately explicit (``from repro.index.grid
import grid_pack``): :mod:`repro.rtree.node` depends on
:mod:`repro.index.packed`, so this ``__init__`` must not import the
builders (which depend on :mod:`repro.rtree`) at package-import time.
"""

from repro.index.packed import (
    pack_child_counts,
    pack_child_mbrs,
    pack_child_pages,
    pack_points,
    prepare_packed_arrays,
)

__all__ = [
    "pack_child_mbrs",
    "pack_child_counts",
    "pack_child_pages",
    "pack_points",
    "prepare_packed_arrays",
]
