"""The packed-index representation shared by every air-index backend.

One index node corresponds to one broadcast page; the vectorised geometry
kernels never look at the node objects themselves but at contiguous
per-fan-out arrays:

* ``(n, 4)`` float64 child MBRs and ``(n,)`` int64 subtree point counts
  for internal pages (Lemma 1–3 bounds, MinMaxDist guarantees);
* ``(n,)`` int64 child page ids (frontier staging, columnar arena);
* ``(n, 2)`` float64 points for leaf pages (distance rows, window masks).

These constructors used to live inline in :mod:`repro.rtree.node` and the
R-tree packers' finalisation epilogue, which silently tied the kernel
lanes to one index family.  They are layout-agnostic — any backend whose
pages expose ``children`` / ``points`` sequences (R-tree, fixed grid,
quadtree) emits the identical representation by calling the same
functions, so the kernels, the arrival frontier and the shared-scan
executor work unchanged on every backend.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def pack_child_mbrs(children: Sequence) -> np.ndarray:
    """Contiguous ``(n, 4)`` float64 array of the children's MBRs.

    An MBR is its ``(xmin, ymin, xmax, ymax)`` namedtuple, so one array
    construction over the MBR rows yields the kernel layout directly.
    """
    return np.array([c.mbr for c in children], dtype=np.float64).reshape(-1, 4)


def pack_child_counts(children: Sequence) -> np.ndarray:
    """Per-child subtree point counts, aligned with :func:`pack_child_mbrs`."""
    return np.array([c.point_count for c in children], dtype=np.int64)


def pack_child_pages(children: Sequence) -> np.ndarray:
    """Contiguous int64 array of the children's broadcast page ids."""
    return np.array([c.page_id for c in children], dtype=np.int64)


def pack_points(points: Sequence) -> np.ndarray:
    """Contiguous ``(n, 2)`` float64 array of a leaf page's points."""
    return np.array(points, dtype=np.float64).reshape(-1, 2)


def prepare_packed_arrays(tree) -> "object":
    """Pack-time epilogue: eagerly build a tree's array-backed views.

    The contiguous child-MBR / leaf-point arrays feed the vectorised
    geometry kernels; building them here (once per index, whichever
    backend built it) keeps the first query of every workload off the cold
    path.  Index families whose fan-outs can never reach the kernel
    dispatch thresholds (e.g. the 64-byte-page geometry with M = 3) skip
    the eager pass — the node accessors stay lazy, so nothing breaks if a
    threshold is lowered at runtime.

    Returns ``tree`` so builders can tail-call it.
    """
    from repro.geometry import kernels

    if kernels.enabled():
        # min_batch() is the weakest dispatch gate per level (transitive
        # bounds for internals, window masks for leaves); levels that can
        # never reach it would build arrays no kernel ever reads.
        internal = tree.fanout >= kernels.min_batch()
        leaves = tree.leaf_capacity >= kernels.min_batch()
        if internal or leaves:
            tree.prepare_arrays(internal=internal, leaves=leaves)
    return tree
