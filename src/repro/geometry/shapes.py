"""Circles and ellipses plus the ANN overlap-ratio heuristics.

Heuristic 1 (circle-rectangle): during an approximate NN search from query
point ``p`` with current upper bound ``u``, prune an R-tree node when the
fraction of its MBR covered by ``circle(p, u)`` is at most the threshold
alpha.

Heuristic 2 (ellipse-rectangle): during Hybrid-NN Case 3, the locus of
points whose transitive distance ``dis(p,x)+dis(x,r)`` stays within the
upper bound is the ellipse with foci ``p`` and ``r`` and major-axis length
equal to the bound; prune when the MBR's covered fraction is at most alpha.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point, distance
from repro.geometry.polygon import clip_polygon_to_rect, polygon_area
from repro.geometry.rect import Rect

#: Number of vertices used to approximate curved shapes for area overlap.
POLYGON_SEGMENTS = 96


@dataclass(frozen=True)
class Circle:
    """A circle given by center and radius — ``circle(p, d)`` in the paper."""

    center: Point
    radius: float

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def contains_point(self, p: Point) -> bool:
        """Closed containment test."""
        return distance(self.center, p) <= self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """True when the circle and rectangle share at least one point."""
        return rect.mindist(self.center) <= self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """True when the whole rectangle lies inside the circle."""
        return all(self.contains_point(c) for c in rect.corners())

    def to_polygon(self, segments: int = POLYGON_SEGMENTS) -> list[Point]:
        """Inscribed regular polygon approximating the circle."""
        cx, cy = self.center
        step = 2.0 * math.pi / segments
        return [
            Point(cx + self.radius * math.cos(i * step), cy + self.radius * math.sin(i * step))
            for i in range(segments)
        ]


@dataclass(frozen=True)
class Ellipse:
    """The ellipse of constant transitive distance.

    ``Ellipse(p, r, major)`` is the set of points ``x`` with
    ``dis(p,x) + dis(x,r) <= major``.  ``major`` is the full major-axis
    length (the transitive-distance bound itself), not the semi-axis.
    An ellipse with ``major < dis(p, r)`` is empty.
    """

    focus1: Point
    focus2: Point
    major: float

    @property
    def is_empty(self) -> bool:
        return self.major < distance(self.focus1, self.focus2)

    @property
    def semi_major(self) -> float:
        return self.major / 2.0

    @property
    def semi_minor(self) -> float:
        c = distance(self.focus1, self.focus2) / 2.0
        a = self.semi_major
        if a <= c:
            return 0.0
        return math.sqrt(a * a - c * c)

    @property
    def center(self) -> Point:
        return self.focus1.midpoint(self.focus2)

    @property
    def area(self) -> float:
        return math.pi * self.semi_major * self.semi_minor

    def contains_point(self, p: Point) -> bool:
        """Closed containment via the focal-sum definition."""
        return distance(self.focus1, p) + distance(p, self.focus2) <= self.major

    def to_polygon(self, segments: int = POLYGON_SEGMENTS) -> list[Point]:
        """Inscribed polygon; empty list for an empty/degenerate ellipse."""
        if self.is_empty:
            return []
        a = self.semi_major
        b = self.semi_minor
        cx, cy = self.center
        angle = math.atan2(
            self.focus2.y - self.focus1.y, self.focus2.x - self.focus1.x
        )
        cos_t, sin_t = math.cos(angle), math.sin(angle)
        step = 2.0 * math.pi / segments
        out: list[Point] = []
        for i in range(segments):
            ex = a * math.cos(i * step)
            ey = b * math.sin(i * step)
            out.append(Point(cx + ex * cos_t - ey * sin_t, cy + ex * sin_t + ey * cos_t))
        return out


def _overlap_ratio(shape_polygon: list[Point], rect: Rect) -> float:
    """Area of (polygon ∩ rect) divided by the rectangle's own area.

    Degenerate (zero-area) rectangles are reported as fully covered when
    their center lies inside the polygonised shape bounding box — for the
    pruning heuristic a point-MBR behaves like its single point.
    """
    if rect.area == 0.0:
        # A point or segment MBR: covered iff its center is in the shape.
        poly_rect = Rect.from_points(shape_polygon) if shape_polygon else None
        if poly_rect is None:
            return 0.0
        clipped = clip_polygon_to_rect(shape_polygon, rect.expanded(1e-12))
        return 1.0 if clipped else 0.0
    clipped = clip_polygon_to_rect(shape_polygon, rect)
    return polygon_area(clipped) / rect.area


def circle_rect_overlap_ratio(circle: Circle, rect: Rect) -> float:
    """Heuristic 1 ratio: ``area(circle ∩ rect) / area(rect)`` in [0, 1].

    Uses the exact closed-form intersection area (see
    :mod:`repro.geometry.circle_area`); degenerate rectangles fall back to
    point containment.
    """
    if circle.radius <= 0.0 or not circle.intersects_rect(rect):
        return 0.0
    if circle.contains_rect(rect):
        return 1.0
    if rect.area == 0.0:
        return 1.0 if circle.contains_point(rect.center) else 0.0
    from repro.geometry.circle_area import circle_rect_intersection_area

    area = circle_rect_intersection_area(circle.center, circle.radius, rect)
    return min(max(area / rect.area, 0.0), 1.0)


def ellipse_rect_overlap_ratio(ellipse: Ellipse, rect: Rect) -> float:
    """Heuristic 2 ratio: ``area(ellipse ∩ rect) / area(rect)`` in [0, 1]."""
    if ellipse.is_empty:
        return 0.0
    if all(ellipse.contains_point(c) for c in rect.corners()):
        return 1.0
    ratio = _overlap_ratio(ellipse.to_polygon(), rect)
    return min(max(ratio, 0.0), 1.0)
