"""Line-segment predicates used by the transitive distance metrics.

``min_trans_dist`` (Definition 1 of the paper) needs three primitives:

* does the segment ``p r`` intersect an MBR;
* are two points strictly on the same side of the line carrying an edge;
* the mirror image of a point across that line (the classic "reflect and
  straighten" shortest-path trick).
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Segment:
    """A closed line segment between two points.

    ``length`` is computed lazily and cached: the scalar bound functions
    probe it repeatedly (degenerate-side tests), and a ``Segment`` is
    immutable by convention, so the first Euclidean evaluation is the only
    one.  The class keeps the tuple-like surface of the previous
    ``NamedTuple`` (equality, hashing, ``a, b`` unpacking).
    """

    __slots__ = ("a", "b", "_length")

    def __init__(self, a: Point, b: Point) -> None:
        self.a = a
        self.b = b
        self._length: Optional[float] = None

    @property
    def length(self) -> float:
        cached = self._length
        if cached is None:
            cached = self.a.distance_to(self.b)
            self._length = cached
        return cached

    def midpoint(self) -> Point:
        return self.a.midpoint(self.b)

    def point_at(self, t: float) -> Point:
        """The point ``a + t * (b - a)``; ``t`` in [0, 1] stays on the segment."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    def __iter__(self) -> Iterator[Point]:
        yield self.a
        yield self.b

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Segment):
            return self.a == other.a and self.b == other.b
        if isinstance(other, tuple):
            return (self.a, self.b) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.a, self.b))

    def __repr__(self) -> str:
        return f"Segment(a={self.a!r}, b={self.b!r})"


def orientation(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle ``abc``.

    Positive for counter-clockwise, negative for clockwise, zero for
    collinear points.
    """
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def _on_segment(a: Point, b: Point, c: Point) -> bool:
    """True when collinear point ``c`` lies on the closed segment ``ab``."""
    return (
        min(a.x, b.x) <= c.x <= max(a.x, b.x)
        and min(a.y, b.y) <= c.y <= max(a.y, b.y)
    )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """Closed intersection test between two segments (touching counts)."""
    d1 = orientation(s2.a, s2.b, s1.a)
    d2 = orientation(s2.a, s2.b, s1.b)
    d3 = orientation(s1.a, s1.b, s2.a)
    d4 = orientation(s1.a, s1.b, s2.b)

    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True
    if d1 == 0 and _on_segment(s2.a, s2.b, s1.a):
        return True
    if d2 == 0 and _on_segment(s2.a, s2.b, s1.b):
        return True
    if d3 == 0 and _on_segment(s1.a, s1.b, s2.a):
        return True
    if d4 == 0 and _on_segment(s1.a, s1.b, s2.b):
        return True
    return False


def segment_intersects_rect(seg: Segment, rect: Rect) -> bool:
    """Closed intersection test between a segment and a rectangle.

    True when the segment touches the boundary or passes through the
    interior, including the case where an endpoint lies inside.
    """
    if rect.contains_point(seg.a) or rect.contains_point(seg.b):
        return True
    return any(
        segments_intersect(seg, Segment(u, v)) for u, v in rect.sides()
    )


def same_strict_side(line: Segment, p: Point, q: Point) -> bool:
    """True when ``p`` and ``q`` lie strictly on the same side of the
    (infinite) line through ``line``."""
    sp = orientation(line.a, line.b, p)
    sq = orientation(line.a, line.b, q)
    return (sp > 0 and sq > 0) or (sp < 0 and sq < 0)


def reflect_point(p: Point, line: Segment) -> Point:
    """Mirror image of ``p`` across the infinite line through ``line``.

    Raises :class:`ValueError` for a degenerate (zero-length) line, since a
    reflection axis is then undefined.
    """
    ax, ay = line.a
    bx, by = line.b
    dx, dy = bx - ax, by - ay
    length = math.hypot(dx, dy)
    if length == 0.0:
        raise ValueError("cannot reflect across a degenerate segment")
    # Normalise the direction first so subnormal segment lengths cannot
    # underflow the projection denominator.
    ux, uy = dx / length, dy / length
    t = (p.x - ax) * ux + (p.y - ay) * uy
    proj = Point(ax + t * ux, ay + t * uy)
    return Point(2.0 * proj.x - p.x, 2.0 * proj.y - p.y)
