"""Transitive-distance metrics over MBRs (Definitions 1-3 of the paper).

Given a start point ``p``, an MBR ``M`` and an end point ``r``:

* :func:`min_trans_dist` is a **lower** bound on ``dis(p,x) + dis(x,r)``
  over every ``x`` in ``M`` (Definition 1, computed per Lemma 1's
  three-case method);
* :func:`max_dist` bounds the transitive distance through any point of a
  *segment* from above (Definition 2 / Lemma 2);
* :func:`min_max_trans_dist` is an **upper** bound guaranteed to be attained
  by some actual data point inside ``M``, by the MBR face property
  (Definition 3 / Lemma 3).

Hybrid-NN (Case 3) prunes with ``min_trans_dist`` and tightens its upper
bound with ``min_max_trans_dist``.
"""

from __future__ import annotations

from repro.geometry.point import Point, distance
from repro.geometry.rect import Rect
from repro.geometry.segment import (
    Segment,
    reflect_point,
    same_strict_side,
    segment_intersects_rect,
    segments_intersect,
)


def min_trans_dist(p: Point, mbr: Rect, r: Point) -> float:
    """Minimum possible ``dis(p, x) + dis(x, r)`` over points ``x`` in ``mbr``.

    Implements the three cases of Lemma 1:

    1. segment ``pr`` intersects the MBR -> ``dis(p, r)`` (the straight line
       already touches the rectangle);
    2. otherwise, for each side with ``p`` and ``r`` strictly on the same
       side, reflect ``r`` across it; if the straightened segment crosses
       that side the optimum touches the side's interior;
    3. otherwise the optimum bends at one of the four vertices.

    The vertex candidates are always evaluated as a safety net, which keeps
    the function a valid lower bound even in grazing/degenerate
    configurations where floating-point side tests are ambiguous.
    """
    direct = Segment(p, r)
    if segment_intersects_rect(direct, mbr):
        return distance(p, r)

    best = min(distance(p, v) + distance(v, r) for v in mbr.corners())

    for u, v in mbr.sides():
        side = Segment(u, v)
        if side.length == 0.0:
            continue
        if not same_strict_side(side, p, r):
            continue
        r_mirror = reflect_point(r, side)
        if segments_intersect(Segment(p, r_mirror), side):
            cand = distance(p, r_mirror)
            if cand < best:
                best = cand
    return best


def max_dist(p: Point, side: tuple[Point, Point], r: Point) -> float:
    """Definition 2: tight upper bound of ``dis(p,x)+dis(x,r)`` over a segment.

    The transitive distance is convex along the segment, so its maximum is
    attained at one of the two endpoints.
    """
    u, v = side
    return max(
        distance(p, u) + distance(u, r),
        distance(p, v) + distance(v, r),
    )


def min_max_trans_dist(p: Point, mbr: Rect, r: Point) -> float:
    """Definition 3: ``min`` over the four MBR sides of :func:`max_dist`.

    By the MBR face property every side of an R-tree MBR touches at least
    one data point, so some data point ``s`` inside the node satisfies
    ``dis(p,s) + dis(s,r) <= min_max_trans_dist(p, mbr, r)`` (Lemma 3).
    """
    return min(max_dist(p, side, r) for side in mbr.sides())
