"""Vectorised structure-of-arrays geometry kernels for the TNN hot path.

The scalar metrics in :mod:`repro.geometry.rect` and
:mod:`repro.geometry.transitive` evaluate one MBR at a time, allocating
``Segment``/``Point`` tuples and running four side tests per call.  After
the arrival-arithmetic caching of the engine PR they dominate Hybrid-NN and
TNN wall-clock.  This module re-expresses every bound as masked numpy array
operations over a whole node fan-out at once: one query against an
``(n, 4)`` array of MBRs (columns ``xmin, ymin, xmax, ymax``, the field
order of :class:`~repro.geometry.rect.Rect`) or an ``(n, 2)`` array of leaf
points.  All per-corner and per-side work is stacked into ``(4, n)`` lanes
and funnelled through a *single* exact-hypot evaluation per kernel, because
numpy's fixed per-ufunc dispatch cost — not arithmetic — is what dominates
at R-tree fan-outs.

Results are **bit-identical** to the scalar implementations, which stay in
place as the correctness oracle (the property tests compare the two paths
exactly).  Two ingredients make exactness possible:

* every intermediate follows the scalar code's operation order, and IEEE-754
  ``+ - * /`` are deterministic, so sign tests, reflections and comparisons
  agree bit-for-bit;
* :func:`hypot` reproduces CPython's ``math.hypot`` (scaling by the leading
  power of two, error-free square products, compensated summation and one
  Newton correction of the square root) instead of calling ``np.hypot``,
  which differs from ``math.hypot`` in the last ulp for ~0.6% of inputs.

Lemma map (paper Definitions/Lemmas 1-3; see ``transitive.py``):

* :func:`min_trans_dist` — Lemma 1, all three cases as masked lanes:

  - **case 1** (segment ``pr`` intersects the MBR): the vectorised
    orientation/on-segment tests of ``_segments_cross`` plus the
    endpoint-containment mask select lanes whose answer is ``dis(p, r)``;
  - **case 2** (reflect and straighten): per side, the strict-same-side
    orientation mask gates a vectorised mirror of ``r`` across the side's
    carrier line, and the straightened segment's crossing test gates the
    ``dis(p, r')`` candidate;
  - **case 3** (vertex bends): the four corner transitive distances are
    always evaluated and reduced with ``np.minimum`` — the same safety net
    the scalar code keeps for grazing/degenerate configurations.

* :func:`min_max_trans_dist` — Lemma 3: per-side maxima of the corner
  transitive distances (Definition 2's endpoint property), reduced with
  a min across the four sides.
* :func:`mindist` / :func:`minmaxdist` — the classic Roussopoulos et al.
  bounds, clamped-axis distances and nearer-edge/farther-corner selection
  done with ``np.maximum`` / ``np.where``; :func:`point_bounds` fuses both
  into one hypot pass for the NN expansion loop.
* :func:`point_dists` / :func:`trans_dists` — leaf fan-out kernels for
  ``dis(q, s)`` and ``dis(p, s) + dis(s, r)``.
* the ``*_multi`` family — the same bounds for a whole **query batch** at
  once: a ``(k, 2)`` array of query points (or ``(k, 2)`` start/end pairs
  for the transitive metrics) against a ``(k, n, 4)`` block of per-query
  child MBRs or a ``(k, n, 2)`` block of per-query leaf points, returning
  ``(k, n)``.  These are the kernels of the shared-scan batch executor
  (:mod:`repro.engine.shared_scan`): when many queries expand R-tree nodes
  on the same page arrival tick, one kernel dispatch serves every query,
  so the per-ufunc floor amortises across the *workload* instead of a
  single fan-out.  Every lane replays the exact scalar operation order, so
  the batch results are bit-identical to the per-query kernels (and hence
  to the scalar oracle).

Because answers are path-independent, dispatch is free to be adaptive: the
fixed kernel overhead only amortises over enough lanes, so callers consult
:func:`min_batch` / :func:`min_batch_leaf` / :func:`min_batch_point`
(``REPRO_KERNEL_MIN_FANOUT`` = 8, ``REPRO_KERNEL_MIN_LEAF`` = 32,
``REPRO_KERNEL_MIN_FANOUT_POINT`` = 128 by default) and keep tiny
fan-outs — e.g. the 64-byte-page trees with M = 3 — on the scalar fallback.
The module-level switch (:func:`enabled` / :func:`use_kernels` /
``REPRO_NO_KERNELS=1``) disables the kernel paths entirely, which is the
A/B baseline of ``benchmarks/bench_tnn_geometry.py``.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = [
    "enabled",
    "use_kernels",
    "min_batch",
    "min_batch_leaf",
    "min_batch_point",
    "as_mbr_array",
    "as_point_array",
    "hypot",
    "point_dists",
    "trans_dists",
    "mindist",
    "minmaxdist",
    "point_bounds",
    "min_trans_dist",
    "min_max_trans_dist",
    "trans_bounds",
    "segment_intersects_rects",
    "point_dists_multi",
    "trans_dists_multi",
    "mindist_multi",
    "point_bounds_multi",
    "trans_bounds_multi",
    "trans_lower_multi",
    "point_weak_bounds_multi",
    "trans_weak_bounds_multi",
    "point_dists_raw",
    "trans_dists_raw",
]

#: Global switch: ``REPRO_NO_KERNELS=1`` forces the scalar fallback path
#: everywhere (traversal, client search), which is the A/B baseline.
_ENABLED = os.environ.get("REPRO_NO_KERNELS", "") not in ("1", "true", "yes")

#: Smallest batch worth a kernel call, per metric family.  Below these the
#: fixed ufunc-dispatch cost of a fused kernel exceeds the scalar loop;
#: results are identical either way, so the thresholds are purely
#: performance dials.  The transitive bounds amortise ~25 scalar-side
#: tests per MBR and pay off around a dozen lanes; the leaf transitive
#: distance needs a few dozen; the single-hypot point metrics compete with
#: one C-level ``math.hypot`` per element and only win on large batches.
_MIN_BATCH = int(os.environ.get("REPRO_KERNEL_MIN_FANOUT", "8"))
_MIN_BATCH_LEAF = int(os.environ.get("REPRO_KERNEL_MIN_LEAF", "32"))
_MIN_BATCH_POINT = int(os.environ.get("REPRO_KERNEL_MIN_FANOUT_POINT", "128"))


def enabled() -> bool:
    """True when the vectorised kernels drive the hot paths."""
    return _ENABLED


def min_batch() -> int:
    """Fan-out threshold for the transitive bound kernels (and masks)."""
    return _MIN_BATCH


def min_batch_leaf() -> int:
    """Batch threshold for the leaf transitive-distance kernel."""
    return _MIN_BATCH_LEAF


def min_batch_point() -> int:
    """Batch threshold for the single-hypot point-metric kernels."""
    return _MIN_BATCH_POINT


@contextmanager
def use_kernels(flag: bool) -> Iterator[None]:
    """Temporarily force the kernel path on (``True``) or off (``False``)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = prev


# ----------------------------------------------------------------------
# Array packing helpers
# ----------------------------------------------------------------------
def as_mbr_array(rects: Sequence[Rect]) -> np.ndarray:
    """Pack rectangles into a contiguous ``(n, 4)`` float64 array."""
    return np.array(rects, dtype=np.float64).reshape(-1, 4)


def as_point_array(points: Sequence[Point]) -> np.ndarray:
    """Pack points into a contiguous ``(n, 2)`` float64 array."""
    return np.array(points, dtype=np.float64).reshape(-1, 2)


# ----------------------------------------------------------------------
# Exact vectorised hypot (bit-identical to math.hypot)
# ----------------------------------------------------------------------
_SPLIT = 134217729.0  # 2**27 + 1, Veltkamp splitting constant

#: Element-count ceiling below which the exact hypot runs as a stdlib
#: ``math.hypot`` loop instead of the vectorised replay.  The replay costs
#: ~75 array passes regardless of size, so tiny blocks (absorb lanes are
#: typically a few dozen elements) pay far more in numpy dispatch than the
#: ~0.15µs-per-element scalar loop; the crossover sits near 700 elements.
_SCALAR_MAX = 640


def _square_dl(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Error-free ``(hi, lo)`` with ``hi + lo == x*x`` exactly.

    Dekker's product via Veltkamp splitting; for ``|x| < 1`` (guaranteed by
    the caller's scaling) it is overflow-free and equals the fma-based error
    term CPython uses, because both compute the *exact* rounding error.
    """
    z = x * x
    t = _SPLIT * x
    hi = t - (t - x)
    lo = x - hi
    zz = ((hi * hi - z) + 2.0 * (hi * lo)) + lo * lo
    return z, zz


def hypot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Elementwise ``math.hypot(x, y)``, bit-identical to the stdlib.

    Reproduces CPython's two-argument ``vector_norm``: take absolute
    values in argument order, scale by the leading power of two so every
    coordinate is in ``[0.5, 1)``, accumulate error-free squares with a
    compensated sum, square-root, then apply one correctly-rounded Newton
    correction.  Rows whose magnitude falls outside the exactly-scalable
    exponent range (zero, subnormal-scale, near-overflow, non-finite) fall
    back to ``math.hypot`` itself.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        shape = np.broadcast_shapes(x.shape, y.shape)
        x = np.broadcast_to(x, shape)
        y = np.broadcast_to(y, shape)
    shape = x.shape
    if x.size <= _SCALAR_MAX:
        # Small block: the stdlib loop *is* the reference value, and beats
        # the fixed cost of the vectorised replay below the crossover.
        hyp = math.hypot
        out = np.fromiter(
            map(hyp, x.ravel().tolist(), y.ravel().tolist()),
            dtype=np.float64,
            count=x.size,
        )
        return out.reshape(shape)
    ax = np.abs(x).ravel()
    ay = np.abs(y).ravel()
    big = np.maximum(ax, ay)
    _, e = np.frexp(big)
    safe = np.isfinite(big) & (big > 0.0) & (e > -1021) & (e < 1023)
    all_safe = bool(safe.all())
    es = e if all_safe else np.where(safe, e, 0)
    scale = np.ldexp(1.0, -es)

    with np.errstate(all="ignore"):
        csum = 1.0
        frac1 = 0.0
        frac2 = 0.0
        for v in (ax * scale, ay * scale):  # argument order, like CPython
            pr_hi, pr_lo = _square_dl(v)
            sm_hi = csum + pr_hi
            sm_lo = (csum - sm_hi) + pr_hi
            csum = sm_hi
            frac1 = frac1 + pr_lo
            frac2 = frac2 + sm_lo
        h = np.sqrt(csum - 1.0 + (frac1 + frac2))
        # One Newton correction step on the double-double residual.
        pr_hi, pr_lo = _square_dl(h)
        sm_hi = csum + (-pr_hi)
        sm_lo = (csum - sm_hi) + (-pr_hi)
        frac1 = frac1 - pr_lo
        frac2 = frac2 + sm_lo
        corr = sm_hi - 1.0 + (frac1 + frac2)
        out = (h + corr / (2.0 * h)) * np.ldexp(1.0, es)

    if not all_safe:
        xf = x.ravel()
        yf = y.ravel()
        for i in np.nonzero(~safe)[0]:
            out[i] = math.hypot(xf[i], yf[i])
    return out.reshape(shape)


# ----------------------------------------------------------------------
# Leaf fan-out kernels
# ----------------------------------------------------------------------
def point_dists(q: Point, pts: np.ndarray) -> np.ndarray:
    """``dis(q, s)`` for every row of an ``(n, 2)`` point array."""
    return hypot(q.x - pts[:, 0], q.y - pts[:, 1])


def trans_dists(p: Point, pts: np.ndarray, r: Point) -> np.ndarray:
    """``dis(p, s) + dis(s, r)`` for every row of an ``(n, 2)`` array.

    Both hops go through one fused hypot evaluation (the per-call dispatch
    cost dwarfs the arithmetic at leaf capacities).
    """
    xs = pts[:, 0]
    ys = pts[:, 1]
    d = hypot(
        np.concatenate((p.x - xs, xs - r.x)),
        np.concatenate((p.y - ys, ys - r.y)),
    )
    n = xs.shape[0]
    return d[:n] + d[n:]


# ----------------------------------------------------------------------
# Classic NN bounds over (n, 4) MBR arrays
# ----------------------------------------------------------------------
def _mindist_xy(q: Point, mbrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    dx = np.maximum(np.maximum(mbrs[:, 0] - q.x, 0.0), q.x - mbrs[:, 2])
    dy = np.maximum(np.maximum(mbrs[:, 1] - q.y, 0.0), q.y - mbrs[:, 3])
    return dx, dy


def _minmaxdist_xy(
    q: Point, mbrs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    xmin, ymin, xmax, ymax = mbrs[:, 0], mbrs[:, 1], mbrs[:, 2], mbrs[:, 3]
    cx = (xmin + xmax) / 2.0
    cy = (ymin + ymax) / 2.0
    # Nearer x edge, farther y corner / nearer y edge, farther x corner.
    rm_x = np.where(q.x <= cx, xmin, xmax)
    rM_y = np.where(q.y >= cy, ymin, ymax)
    rm_y = np.where(q.y <= cy, ymin, ymax)
    rM_x = np.where(q.x >= cx, xmin, xmax)
    return q.x - rm_x, q.y - rM_y, q.x - rM_x, q.y - rm_y


def mindist(q: Point, mbrs: np.ndarray) -> np.ndarray:
    """MINDIST lower bound of ``dis(q, .)`` for every MBR row."""
    dx, dy = _mindist_xy(q, mbrs)
    return hypot(dx, dy)


def minmaxdist(q: Point, mbrs: np.ndarray) -> np.ndarray:
    """MINMAXDIST upper bound (MBR face property) for every MBR row."""
    ax, ay, bx, by = _minmaxdist_xy(q, mbrs)
    d = hypot(np.concatenate((ax, bx)), np.concatenate((ay, by)))
    n = mbrs.shape[0]
    return np.minimum(d[:n], d[n:])


def point_bounds(q: Point, mbrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(MINDIST, MINMAXDIST)`` per MBR row via one fused hypot pass."""
    mdx, mdy = _mindist_xy(q, mbrs)
    ax, ay, bx, by = _minmaxdist_xy(q, mbrs)
    d = hypot(
        np.concatenate((mdx, ax, bx)), np.concatenate((mdy, ay, by))
    )
    n = mbrs.shape[0]
    return d[:n], np.minimum(d[n : 2 * n], d[2 * n :])


# ----------------------------------------------------------------------
# Vectorised segment predicates
# ----------------------------------------------------------------------
def _orient(ax, ay, bx, by, cx, cy):  # type: ignore[no-untyped-def]
    """Twice the signed area of ``abc`` — same formula as the scalar code."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def _on_segment(ax, ay, bx, by, cx, cy):  # type: ignore[no-untyped-def]
    """Collinear point-on-closed-segment test (bounding-box comparisons)."""
    return (
        (np.minimum(ax, bx) <= cx)
        & (cx <= np.maximum(ax, bx))
        & (np.minimum(ay, by) <= cy)
        & (cy <= np.maximum(ay, by))
    )


def _segments_cross(px, py, qx, qy, ax, ay, bx, by):  # type: ignore[no-untyped-def]
    """Closed intersection mask between segments ``p q`` and segments ``a b``.

    Vector transcription of :func:`repro.geometry.segment.segments_intersect`
    with ``s1 = (p, q)`` and ``s2 = (a, b)``; all operands broadcast.
    """
    d1 = _orient(ax, ay, bx, by, px, py)
    d2 = _orient(ax, ay, bx, by, qx, qy)
    d3 = _orient(px, py, qx, qy, ax, ay)
    d4 = _orient(px, py, qx, qy, bx, by)
    proper = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) & (
        ((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0))
    )
    touch = (
        ((d1 == 0) & _on_segment(ax, ay, bx, by, px, py))
        | ((d2 == 0) & _on_segment(ax, ay, bx, by, qx, qy))
        | ((d3 == 0) & _on_segment(px, py, qx, qy, ax, ay))
        | ((d4 == 0) & _on_segment(px, py, qx, qy, bx, by))
    )
    return proper | touch


def _corner_lanes(mbrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Corner coordinates stacked as ``(4, n)`` lanes, scalar CCW order."""
    xmin, ymin, xmax, ymax = mbrs[:, 0], mbrs[:, 1], mbrs[:, 2], mbrs[:, 3]
    return np.stack((xmin, xmax, xmax, xmin)), np.stack((ymin, ymin, ymax, ymax))


def _min_max_from_corners(corner_t: np.ndarray) -> np.ndarray:
    """Lemma 3 (MinMaxTransDist) from the ``(4, n)`` corner distances.

    Definition 2's endpoint property makes each side's MaxDist the max of
    its two corner values; Lemma 3 takes the min over the four sides.
    """
    return np.maximum(corner_t, corner_t[_NEXT, :]).min(axis=0)


#: Lane index of each CCW side's second endpoint: side k runs corner k ->
#: corner (k+1) % 4.
_NEXT = (1, 2, 3, 0)

#: Unit direction (ux, uy) of each CCW side's carrier line as ``(4, 1)``
#: column vectors.  These are the exact values the scalar ``reflect_point``
#: computes (``dx / |dx|`` is exactly +-1.0 for axis-aligned sides), so the
#: mirror arithmetic below replays the scalar operation sequence
#: bit-for-bit.
_UX = np.array([[1.0], [0.0], [-1.0], [0.0]])
_UY = np.array([[0.0], [1.0], [0.0], [-1.0]])


def segment_intersects_rects(p: Point, r: Point, mbrs: np.ndarray) -> np.ndarray:
    """Mask: does the closed segment ``p r`` touch each MBR (case 1)?"""
    xmin, ymin, xmax, ymax = mbrs[:, 0], mbrs[:, 1], mbrs[:, 2], mbrs[:, 3]
    inside_p = (xmin <= p.x) & (p.x <= xmax) & (ymin <= p.y) & (p.y <= ymax)
    inside_r = (xmin <= r.x) & (r.x <= xmax) & (ymin <= r.y) & (r.y <= ymax)
    cx, cy = _corner_lanes(mbrs)
    crossed = _segments_cross(
        p.x, p.y, r.x, r.y, cx, cy, cx[_NEXT, :], cy[_NEXT, :]
    )
    return inside_p | inside_r | crossed.any(axis=0)


# ----------------------------------------------------------------------
# Transitive bounds over (n, 4) MBR arrays (Lemmas 1-3)
# ----------------------------------------------------------------------
def _trans_core(
    p: Point, mbrs: np.ndarray, r: Point, want_lower: bool, want_upper: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared Lemma 1 / Lemma 3 evaluation over ``(4, n)`` corner lanes.

    One hypot pass covers the corner transitive distances (cases 2-3 of
    Lemma 1 *and* the side maxima of Lemma 3) plus the reflect-and-
    straighten candidates, and the case-1 and case-2 segment-crossing
    tests run as one batched ``(8, n)`` orientation evaluation — the fixed
    per-ufunc dispatch cost, not arithmetic, dominates at R-tree fan-outs.
    The collinear "touch" branch of the crossing test is evaluated lazily:
    it only matters on lanes where some orientation is exactly zero, which
    a grazing/degenerate configuration must produce first.
    """
    cx, cy = _corner_lanes(mbrs)
    ax, ay = cx, cy
    bx, by = cx[_NEXT, :], cy[_NEXT, :]

    if not want_lower:
        d = hypot(
            np.concatenate((p.x - cx, cx - r.x)),
            np.concatenate((p.y - cy, cy - r.y)),
        )
        corner_t = d[0:4] + d[4:8]
        return np.empty(0), _min_max_from_corners(corner_t)

    with np.errstate(all="ignore"):
        # Mirror r across each side's carrier line (case 2), replaying
        # reflect_point's projection arithmetic with the side's exact
        # unit direction.
        t = (r.x - ax) * _UX + (r.y - ay) * _UY
        projx = ax + t * _UX
        projy = ay + t * _UY
        mx = 2.0 * projx - r.x
        my = 2.0 * projy - r.y
    d = hypot(
        np.concatenate((p.x - cx, cx - r.x, p.x - mx)),
        np.concatenate((p.y - cy, cy - r.y, p.y - my)),
    )
    d_pc, d_cr, cand = d[0:4], d[4:8], d[8:12]
    corner_t = d_pc + d_cr  # dis(p, corner) + dis(corner, r), (4, n)

    upper = _min_max_from_corners(corner_t) if want_upper else np.empty(0)

    # Case 3 safety net: the vertex bends, always evaluated.
    best = corner_t.min(axis=0)

    # Batched crossing tests: segment (p, r) against each side (case 1)
    # and segment (p, mirror) against its side (case 2) share the side
    # lanes and the orientation of p, so evaluate all eight as one block:
    # lanes 0-3 are (p, r) x side k, lanes 4-7 are (p, mirror_k) x side k.
    qx = np.concatenate((np.broadcast_to(r.x, cx.shape), mx))
    qy = np.concatenate((np.broadcast_to(r.y, cy.shape), my))
    sax = np.concatenate((ax, ax))
    say = np.concatenate((ay, ay))
    sbx = np.concatenate((bx, bx))
    sby = np.concatenate((by, by))
    o_p = _orient(ax, ay, bx, by, p.x, p.y)  # shared by both halves
    d1 = np.concatenate((o_p, o_p))
    d2 = _orient(sax, say, sbx, sby, qx, qy)
    d3 = _orient(p.x, p.y, qx, qy, sax, say)
    d4 = _orient(p.x, p.y, qx, qy, sbx, sby)
    crosses = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) & (
        ((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0))
    )
    z1, z2, z3, z4 = d1 == 0, d2 == 0, d3 == 0, d4 == 0
    if (z1 | z2 | z3 | z4).any():
        # Grazing/collinear lanes: the scalar code's endpoint-touch tests.
        crosses = crosses | (
            (z1 & _on_segment(sax, say, sbx, sby, p.x, p.y))
            | (z2 & _on_segment(sax, say, sbx, sby, qx, qy))
            | (z3 & _on_segment(p.x, p.y, qx, qy, sax, say))
            | (z4 & _on_segment(p.x, p.y, qx, qy, sbx, sby))
        )

    # Case 2 gates: non-degenerate side, p and r strictly on the same side
    # of the carrier line, straightened segment crosses the side.  The
    # orientation of r w.r.t. each side is lane 0-3 of d2.
    width_ok = mbrs[:, 2] - mbrs[:, 0] > 0.0
    height_ok = mbrs[:, 3] - mbrs[:, 1] > 0.0
    nondegen = np.stack((width_ok, height_ok, width_ok, height_ok))
    o_r = d2[0:4]
    same_side = ((o_p > 0) & (o_r > 0)) | ((o_p < 0) & (o_r < 0))
    valid = nondegen & same_side & crosses[4:8]
    best = np.minimum(best, np.where(valid, cand, math.inf).min(axis=0))

    # Case 1: the straight line already touches the rectangle.
    inside_p = (
        (mbrs[:, 0] <= p.x)
        & (p.x <= mbrs[:, 2])
        & (mbrs[:, 1] <= p.y)
        & (p.y <= mbrs[:, 3])
    )
    inside_r = (
        (mbrs[:, 0] <= r.x)
        & (r.x <= mbrs[:, 2])
        & (mbrs[:, 1] <= r.y)
        & (r.y <= mbrs[:, 3])
    )
    case1 = inside_p | inside_r | crosses[0:4].any(axis=0)
    direct = math.hypot(p.x - r.x, p.y - r.y)
    lower = np.where(case1, direct, best)
    return lower, upper


def min_trans_dist(p: Point, mbrs: np.ndarray, r: Point) -> np.ndarray:
    """Lemma 1 lower bound for one ``(p, r)`` pair against every MBR row."""
    lower, _ = _trans_core(p, mbrs, r, want_lower=True, want_upper=False)
    return lower


def min_max_trans_dist(p: Point, mbrs: np.ndarray, r: Point) -> np.ndarray:
    """Lemma 3 upper bound for one ``(p, r)`` pair against every MBR row."""
    _, upper = _trans_core(p, mbrs, r, want_lower=False, want_upper=True)
    return upper


def trans_bounds(
    p: Point, mbrs: np.ndarray, r: Point
) -> Tuple[np.ndarray, np.ndarray]:
    """``(MinTransDist, MinMaxTransDist)`` sharing one corner evaluation.

    Hybrid-NN needs both bounds for every child of an expanded node; the
    four corner transitive distances are common to Lemma 1's case-3 lanes
    and Lemma 3's side maxima, so computing them once halves the work.
    """
    return _trans_core(p, mbrs, r, want_lower=True, want_upper=True)


# ----------------------------------------------------------------------
# Query-batched kernels: (k, 2) query block against per-query fan-outs
# ----------------------------------------------------------------------
# The shared-scan executor serves every active query on one page arrival
# tick; these kernels evaluate one bound family for the *whole* batch —
# query row i against MBR/point block row i — in a single dispatch.  All
# lanes replay the per-query kernels' exact operation order (which in turn
# replays the scalar oracle), so every element is bit-identical to the
# corresponding single-query evaluation.


def point_dists_multi(queries: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """``dis(q_i, s_ij)``: ``(k, 2)`` queries vs ``(k, n, 2)`` leaf blocks."""
    return hypot(
        queries[:, 0, None] - pts[..., 0], queries[:, 1, None] - pts[..., 1]
    )


def trans_dists_multi(
    starts: np.ndarray, pts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """``dis(p_i, s_ij) + dis(s_ij, r_i)`` over ``(k, n, 2)`` leaf blocks."""
    xs = pts[..., 0]
    ys = pts[..., 1]
    d = hypot(
        np.stack((starts[:, 0, None] - xs, xs - ends[:, 0, None])),
        np.stack((starts[:, 1, None] - ys, ys - ends[:, 1, None])),
    )
    return d[0] + d[1]


def _mindist_xy_multi(
    qx: np.ndarray, qy: np.ndarray, mbrs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    dx = np.maximum(np.maximum(mbrs[..., 0] - qx, 0.0), qx - mbrs[..., 2])
    dy = np.maximum(np.maximum(mbrs[..., 1] - qy, 0.0), qy - mbrs[..., 3])
    return dx, dy


def mindist_multi(queries: np.ndarray, mbrs: np.ndarray) -> np.ndarray:
    """Per-query MINDIST: ``(k, 2)`` queries vs ``(k, 4)`` or ``(k, n, 4)``.

    With one MBR per query (``(k, 4)``) this is the batched pop-time prune
    test of the kNN/range clients; with per-query fan-out blocks it is the
    lower-bound half of :func:`point_bounds_multi`.
    """
    if mbrs.ndim == 2:
        qx, qy = queries[:, 0], queries[:, 1]
    else:
        qx, qy = queries[:, 0, None], queries[:, 1, None]
    dx, dy = _mindist_xy_multi(qx, qy, mbrs)
    return hypot(dx, dy)


def point_bounds_multi(
    queries: np.ndarray, mbrs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(MINDIST, MINMAXDIST)`` per (query, child): ``(k, n, 4)`` blocks.

    One fused hypot pass over three ``(k, n)`` lanes, exactly like the
    single-query :func:`point_bounds` fuses its three ``(n,)`` lanes.
    """
    qx, qy = queries[:, 0, None], queries[:, 1, None]
    mdx, mdy = _mindist_xy_multi(qx, qy, mbrs)
    xmin, ymin = mbrs[..., 0], mbrs[..., 1]
    xmax, ymax = mbrs[..., 2], mbrs[..., 3]
    cx = (xmin + xmax) / 2.0
    cy = (ymin + ymax) / 2.0
    # Nearer x edge, farther y corner / nearer y edge, farther x corner.
    rm_x = np.where(qx <= cx, xmin, xmax)
    rM_y = np.where(qy >= cy, ymin, ymax)
    rm_y = np.where(qy <= cy, ymin, ymax)
    rM_x = np.where(qx >= cx, xmin, xmax)
    d = hypot(
        np.stack((mdx, qx - rm_x, qx - rM_x)),
        np.stack((mdy, qy - rM_y, qy - rm_y)),
    )
    return d[0], np.minimum(d[1], d[2])


def trans_bounds_multi(
    starts: np.ndarray, mbrs: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(MinTransDist, MinMaxTransDist)`` per (query, child) over blocks.

    Transcribes :func:`_trans_core` (both bounds wanted) onto ``(4, k, n)``
    corner lanes with per-row ``(p_i, r_i)`` pairs: Lemma 1's three cases
    and Lemma 3's side maxima for ``k`` queries in one fused evaluation.
    """
    xmin, ymin = mbrs[..., 0], mbrs[..., 1]
    xmax, ymax = mbrs[..., 2], mbrs[..., 3]
    cx = np.stack((xmin, xmax, xmax, xmin))
    cy = np.stack((ymin, ymin, ymax, ymax))
    ax, ay = cx, cy
    bx, by = cx[_NEXT, :], cy[_NEXT, :]
    px, py = starts[:, 0, None], starts[:, 1, None]
    rx, ry = ends[:, 0, None], ends[:, 1, None]

    with np.errstate(all="ignore"):
        # Mirror r_i across each side's carrier line (case 2), replaying
        # reflect_point's projection arithmetic per query row.
        ux = _UX[:, :, None]
        uy = _UY[:, :, None]
        t = (rx - ax) * ux + (ry - ay) * uy
        projx = ax + t * ux
        projy = ay + t * uy
        mx = 2.0 * projx - rx
        my = 2.0 * projy - ry
    d = hypot(
        np.concatenate((px - cx, cx - rx, px - mx)),
        np.concatenate((py - cy, cy - ry, py - my)),
    )
    d_pc, d_cr, cand = d[0:4], d[4:8], d[8:12]
    corner_t = d_pc + d_cr  # dis(p_i, corner) + dis(corner, r_i), (4, k, n)

    upper = _min_max_from_corners(corner_t)

    # Case 3 safety net: the vertex bends, always evaluated.
    best = corner_t.min(axis=0)

    # Batched crossing tests, exactly as in _trans_core: lanes 0-3 are
    # (p_i, r_i) x side k, lanes 4-7 are (p_i, mirror_k) x side k.
    qx = np.concatenate((np.broadcast_to(rx, cx.shape), mx))
    qy = np.concatenate((np.broadcast_to(ry, cy.shape), my))
    sax = np.concatenate((ax, ax))
    say = np.concatenate((ay, ay))
    sbx = np.concatenate((bx, bx))
    sby = np.concatenate((by, by))
    o_p = _orient(ax, ay, bx, by, px, py)  # shared by both halves
    d1 = np.concatenate((o_p, o_p))
    d2 = _orient(sax, say, sbx, sby, qx, qy)
    d3 = _orient(px, py, qx, qy, sax, say)
    d4 = _orient(px, py, qx, qy, sbx, sby)
    crosses = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) & (
        ((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0))
    )
    z1, z2, z3, z4 = d1 == 0, d2 == 0, d3 == 0, d4 == 0
    if (z1 | z2 | z3 | z4).any():
        # Grazing/collinear lanes: the scalar code's endpoint-touch tests.
        crosses = crosses | (
            (z1 & _on_segment(sax, say, sbx, sby, px, py))
            | (z2 & _on_segment(sax, say, sbx, sby, qx, qy))
            | (z3 & _on_segment(px, py, qx, qy, sax, say))
            | (z4 & _on_segment(px, py, qx, qy, sbx, sby))
        )

    # Case 2 gates: non-degenerate side, p_i and r_i strictly on the same
    # side of the carrier line, straightened segment crosses the side.
    width_ok = mbrs[..., 2] - mbrs[..., 0] > 0.0
    height_ok = mbrs[..., 3] - mbrs[..., 1] > 0.0
    nondegen = np.stack((width_ok, height_ok, width_ok, height_ok))
    o_r = d2[0:4]
    same_side = ((o_p > 0) & (o_r > 0)) | ((o_p < 0) & (o_r < 0))
    valid = nondegen & same_side & crosses[4:8]
    best = np.minimum(best, np.where(valid, cand, math.inf).min(axis=0))

    # Case 1: the straight line p_i -> r_i already touches the rectangle.
    inside_p = (xmin <= px) & (px <= xmax) & (ymin <= py) & (py <= ymax)
    inside_r = (xmin <= rx) & (rx <= xmax) & (ymin <= ry) & (ry <= ymax)
    case1 = inside_p | inside_r | crosses[0:4].any(axis=0)
    direct = hypot(starts[:, 0] - ends[:, 0], starts[:, 1] - ends[:, 1])
    lower = np.where(case1, direct[:, None], best)
    return lower, upper


def trans_lower_multi(
    px: np.ndarray, py: np.ndarray, mbrs: np.ndarray, rx: np.ndarray,
    ry: np.ndarray,
) -> np.ndarray:
    """Exact Lemma 1 lower bound, one ``(p_i, M_i, r_i)`` triple per row.

    The lower-only sibling of :func:`trans_bounds_multi` for the
    one-MBR-per-query shape: ``(k,)`` start/end components against a
    ``(k, 4)`` MBR block, skipping the Lemma 3 lane and the fan-out
    dimension.  This is the shared-scan serve's margin-band resolver —
    the rows whose staged keep certificate failed batch their exact
    scalar test (``BroadcastNNSearch._lower_bound``) into one call.
    Bit-identical to ``min_trans_dist(p_i, M_i, r_i)`` row by row: the
    corner lanes, the mirror candidates and the crossing tests replay
    :func:`_trans_core` on ``(4, k)`` lanes with per-row endpoints.
    """
    xmin, ymin = mbrs[:, 0], mbrs[:, 1]
    xmax, ymax = mbrs[:, 2], mbrs[:, 3]
    cx = np.stack((xmin, xmax, xmax, xmin))
    cy = np.stack((ymin, ymin, ymax, ymax))
    ax, ay = cx, cy
    bx, by = cx[_NEXT, :], cy[_NEXT, :]

    with np.errstate(all="ignore"):
        # Mirror r_i across each side's carrier line (case 2), replaying
        # reflect_point's projection arithmetic per row.
        t = (rx - ax) * _UX + (ry - ay) * _UY
        projx = ax + t * _UX
        projy = ay + t * _UY
        mx = 2.0 * projx - rx
        my = 2.0 * projy - ry
    # One fused hypot batch: corner legs (lanes 0-7), mirror candidates
    # (8-11) and the direct p_i -> r_i distance (12) — every element is
    # still an isolated exact-hypot evaluation, so folding the lanes
    # together only saves dispatches, never changes a bit.
    d = hypot(
        np.concatenate((px - cx, cx - rx, px - mx, (px - rx)[None, :])),
        np.concatenate((py - cy, cy - ry, py - my, (py - ry)[None, :])),
    )
    cand = d[8:12]
    direct = d[12]
    corner_t = d[0:4] + d[4:8]  # dis(p_i, c) + dis(c, r_i), (4, k)

    # Case 3 safety net: the vertex bends, always evaluated.
    best = corner_t.min(axis=0)

    # Batched crossing tests, exactly as in _trans_core: lanes 0-3 are
    # (p_i, r_i) x side k, lanes 4-7 are (p_i, mirror_k) x side k.
    qx = np.concatenate((np.broadcast_to(rx, cx.shape), mx))
    qy = np.concatenate((np.broadcast_to(ry, cy.shape), my))
    sax = np.concatenate((ax, ax))
    say = np.concatenate((ay, ay))
    sbx = np.concatenate((bx, bx))
    sby = np.concatenate((by, by))
    o_p = _orient(ax, ay, bx, by, px, py)  # shared by both halves
    d1 = np.concatenate((o_p, o_p))
    d2 = _orient(sax, say, sbx, sby, qx, qy)
    # d3/d4 share the (p_i, q) segment: one orientation dispatch over the
    # stacked endpoint lanes covers both.
    d34 = _orient(
        px, py,
        np.concatenate((qx, qx)), np.concatenate((qy, qy)),
        np.concatenate((sax, sbx)), np.concatenate((say, sby)),
    )
    d3, d4 = d34[0:8], d34[8:16]
    crosses = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) & (
        ((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0))
    )
    z1, z2, z3, z4 = d1 == 0, d2 == 0, d3 == 0, d4 == 0
    if (z1 | z2 | z3 | z4).any():
        # Grazing/collinear lanes: the scalar code's endpoint-touch tests.
        crosses = crosses | (
            (z1 & _on_segment(sax, say, sbx, sby, px, py))
            | (z2 & _on_segment(sax, say, sbx, sby, qx, qy))
            | (z3 & _on_segment(px, py, qx, qy, sax, say))
            | (z4 & _on_segment(px, py, qx, qy, sbx, sby))
        )

    # Case 2 gates: non-degenerate side, p_i and r_i strictly on the same
    # side of the carrier line, straightened segment crosses the side.
    width_ok = xmax - xmin > 0.0
    height_ok = ymax - ymin > 0.0
    nondegen = np.stack((width_ok, height_ok, width_ok, height_ok))
    o_r = d2[0:4]
    same_side = ((o_p > 0) & (o_r > 0)) | ((o_p < 0) & (o_r < 0))
    valid = nondegen & same_side & crosses[4:8]
    best = np.minimum(best, np.where(valid, cand, math.inf).min(axis=0))

    # Case 1: the straight line p_i -> r_i already touches the rectangle.
    # Both endpoints share one containment dispatch over stacked lanes.
    tx = np.stack((px, rx))
    ty = np.stack((py, ry))
    ins = (xmin <= tx) & (tx <= xmax) & (ymin <= ty) & (ty <= ymax)
    case1 = ins[0] | ins[1] | crosses[0:4].any(axis=0)
    return np.where(case1, direct, best)


# ----------------------------------------------------------------------
# Certified estimate lanes (raw np.hypot behind deflate/inflate margins)
# ----------------------------------------------------------------------
# The exact vectorised hypot costs ~15 array passes; ``np.hypot`` costs
# one, at the price of a last-ulp deviation from ``math.hypot``.  The
# shared-scan executor therefore batches *certified estimates*: an
# under-estimate deflated by a margin (~1e-9) that dwarfs both the
# estimate's own slack and np.hypot's deviation can prove a prune (or
# that a guarantee scan is a no-op) exactly like the oracle would, and
# only the undecided margin band pays an exact scalar evaluation.  This
# is the arrival-frontier's two-tier bound strategy, lifted to query
# batches.  Estimate values are never stored into anything observable —
# answers, bounds, times — only their gated *decisions* are.


def point_weak_bounds_multi(
    queries: np.ndarray, mbrs: np.ndarray, deflate: float
) -> Tuple[np.ndarray, np.ndarray]:
    """(certified weak MINDIST, raw MINMAXDIST estimate) per (query, child).

    The weak lane is ``MINDIST`` under raw ``np.hypot`` scaled by
    ``deflate`` — a certified under-estimate of the exact MINDIST, usable
    to prove pop-time prunes.  The second lane estimates MINMAXDIST to
    within an ulp; callers may only gate with it (deflate/inflate), never
    store it.
    """
    qx, qy = queries[:, 0, None], queries[:, 1, None]
    mdx, mdy = _mindist_xy_multi(qx, qy, mbrs)
    xmin, ymin = mbrs[..., 0], mbrs[..., 1]
    xmax, ymax = mbrs[..., 2], mbrs[..., 3]
    cx = (xmin + xmax) / 2.0
    cy = (ymin + ymax) / 2.0
    rm_x = np.where(qx <= cx, xmin, xmax)
    rM_y = np.where(qy >= cy, ymin, ymax)
    rm_y = np.where(qy <= cy, ymin, ymax)
    rM_x = np.where(qx >= cx, xmin, xmax)
    est = np.minimum(
        np.hypot(qx - rm_x, qy - rM_y), np.hypot(qx - rM_x, qy - rm_y)
    )
    return np.hypot(mdx, mdy) * deflate, est


def trans_weak_bounds_multi(
    starts: np.ndarray, mbrs: np.ndarray, ends: np.ndarray, deflate: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(weak Lemma 1, raw Lemma 3 estimate, keep bound) per (query, child).

    The weak lane is ``MinDist(p, M) + MinDist(r, M)`` under raw
    ``np.hypot`` scaled by ``deflate`` — the transitive metric's certified
    under-estimate (cf. ``BroadcastNNSearch._weak_lower``).  The second
    lane is Lemma 3's side maxima over raw corner transitive sums, within
    an ulp of the exact MinMaxTransDist — gate-only, never store.  The
    third lane mirrors ``BroadcastNNSearch._certified_keep``'s two upper
    bounds on the exact Lemma 1 value — the smaller of the through-centre
    transitive distance and the best raw corner transitive sum (both
    reachable points of the MBR, so both dominate Lemma 1 regardless of
    subtree backing) — uninflated; callers apply their own margin.
    """
    px, py = starts[:, 0, None], starts[:, 1, None]
    rx, ry = ends[:, 0, None], ends[:, 1, None]
    dxp, dyp = _mindist_xy_multi(px, py, mbrs)
    dxr, dyr = _mindist_xy_multi(rx, ry, mbrs)
    weak = (np.hypot(dxp, dyp) + np.hypot(dxr, dyr)) * deflate
    cx, cy = _corner_lanes(mbrs.reshape(-1, 4))
    shape = (4,) + mbrs.shape[:-1]
    cx = cx.reshape(shape)
    cy = cy.reshape(shape)
    corner_t = np.hypot(px - cx, py - cy) + np.hypot(cx - rx, cy - ry)
    est = np.maximum(corner_t, corner_t[_NEXT, :]).min(axis=0)
    mx = (mbrs[..., 0] + mbrs[..., 2]) * 0.5
    my = (mbrs[..., 1] + mbrs[..., 3]) * 0.5
    centre_t = np.hypot(px - mx, py - my) + np.hypot(mx - rx, my - ry)
    keep = np.minimum(corner_t.min(axis=0), centre_t)
    return weak, est, keep


def trans_corner_minmax_multi(
    starts: np.ndarray, mbrs: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Exact Lemma 3 corner MinMaxTransDist per (query, child).

    Bit-identical to ``BroadcastNNSearch._corner_minmax_trans`` row by
    row: the four corner transitive sums run on the exact
    :func:`hypot` in the scalar helper's argument order, and the
    ``min`` of adjacent-corner ``max`` pairs replays its evaluation —
    one kernel call replaces the guarantee scans' per-child scalar
    corner walks across a whole absorb lane.
    """
    px, py = starts[:, 0, None], starts[:, 1, None]
    rx, ry = ends[:, 0, None], ends[:, 1, None]
    xmin = mbrs[..., 0]
    ymin = mbrs[..., 1]
    xmax = mbrs[..., 2]
    ymax = mbrs[..., 3]
    # All eight hops fuse into one exact-hypot dispatch (elementwise, so
    # every lane is bit-identical to its standalone evaluation).
    d = hypot(
        np.stack((
            px - xmin, px - xmax, px - xmax, px - xmin,
            xmin - rx, xmax - rx, xmax - rx, xmin - rx,
        )),
        np.stack((
            py - ymin, py - ymin, py - ymax, py - ymax,
            ymin - ry, ymin - ry, ymax - ry, ymax - ry,
        )),
    )
    t0 = d[0] + d[4]
    t1 = d[1] + d[5]
    t2 = d[2] + d[6]
    t3 = d[3] + d[7]
    return np.minimum(
        np.minimum(np.maximum(t0, t1), np.maximum(t1, t2)),
        np.minimum(np.maximum(t2, t3), np.maximum(t3, t0)),
    )


def point_dists_raw(queries: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Raw-``np.hypot`` ``dis(q_i, s_ij)`` estimates — gate-only."""
    return np.hypot(
        queries[:, 0, None] - pts[..., 0], queries[:, 1, None] - pts[..., 1]
    )


def trans_dists_raw(
    starts: np.ndarray, pts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Raw-``np.hypot`` transitive leaf estimates — gate-only."""
    xs = pts[..., 0]
    ys = pts[..., 1]
    return np.hypot(starts[:, 0, None] - xs, starts[:, 1, None] - ys) + np.hypot(
        xs - ends[:, 0, None], ys - ends[:, 1, None]
    )
