"""Convex-polygon clipping and area, used by the ANN overlap heuristics.

The ANN pruning conditions (Heuristics 1 and 2) need the area of the
intersection between an MBR and a circle or ellipse.  We approximate the
curved shape by a fine convex polygon and clip it to the rectangle with
Sutherland-Hodgman, which is exact for the polygon and converges quickly to
the true overlap (the relative error of an n-gon inscribed in a circle is
O(1/n^2); at n=128 it is below 0.05%, far finer than the pruning decision
needs).
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def polygon_area(vertices: Sequence[Point]) -> float:
    """Absolute area of a simple polygon via the shoelace formula."""
    n = len(vertices)
    if n < 3:
        return 0.0
    acc = 0.0
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        acc += x1 * y2 - x2 * y1
    return abs(acc) / 2.0


def _clip_halfplane(
    vertices: list[Point], inside, intersect
) -> list[Point]:
    """One Sutherland-Hodgman pass against a half-plane.

    ``inside(p)`` tests membership; ``intersect(a, b)`` returns the crossing
    point of edge ``ab`` with the half-plane boundary.
    """
    if not vertices:
        return []
    result: list[Point] = []
    prev = vertices[-1]
    prev_in = inside(prev)
    for cur in vertices:
        cur_in = inside(cur)
        if cur_in:
            if not prev_in:
                result.append(intersect(prev, cur))
            result.append(cur)
        elif prev_in:
            result.append(intersect(prev, cur))
        prev, prev_in = cur, cur_in
    return result


def clip_polygon_to_rect(vertices: Sequence[Point], rect: Rect) -> list[Point]:
    """Clip a convex polygon to an axis-aligned rectangle.

    Returns the (possibly empty) clipped polygon's vertices.  Correct for
    convex input; for the inscribed-polygon approximations used here the
    input is always convex.
    """

    def x_cross(a: Point, b: Point, x: float) -> Point:
        t = (x - a.x) / (b.x - a.x)
        return Point(x, a.y + t * (b.y - a.y))

    def y_cross(a: Point, b: Point, y: float) -> Point:
        t = (y - a.y) / (b.y - a.y)
        return Point(a.x + t * (b.x - a.x), y)

    out = list(vertices)
    out = _clip_halfplane(out, lambda p: p.x >= rect.xmin, lambda a, b: x_cross(a, b, rect.xmin))
    out = _clip_halfplane(out, lambda p: p.x <= rect.xmax, lambda a, b: x_cross(a, b, rect.xmax))
    out = _clip_halfplane(out, lambda p: p.y >= rect.ymin, lambda a, b: y_cross(a, b, rect.ymin))
    out = _clip_halfplane(out, lambda p: p.y <= rect.ymax, lambda a, b: y_cross(a, b, rect.ymax))
    return out
