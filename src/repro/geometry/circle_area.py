"""Exact circle-rectangle intersection area.

Computes ``area(disk(center, r) ∩ rect)`` in closed form by integrating the
vertical extent of the intersection along x:

    A = ∫ max(0, min(y2, g(x)) - max(y1, -g(x))) dx,   g(x) = sqrt(r² - x²)

with the rectangle translated so the disk sits at the origin.  The
integrand changes branch only where ``g(x)`` crosses ``y1``/``y2`` or 0,
so splitting at those breakpoints leaves pieces that integrate exactly via
``∫ sqrt(r²-x²) dx = (x·sqrt(r²-x²) + r²·asin(x/r)) / 2``.

Used by the ANN circle heuristic (Heuristic 1); the ellipse heuristic has
no comparable closed form and keeps the polygon-clipping approximation.
"""

from __future__ import annotations

import math

from repro.geometry.rect import Rect
from repro.geometry.point import Point


def _antiderivative(x: float, r: float) -> float:
    """∫ sqrt(r² - t²) dt evaluated at ``t = x`` (x clamped to [-r, r])."""
    x = max(-r, min(r, x))
    return 0.5 * (x * math.sqrt(max(r * r - x * x, 0.0)) + r * r * math.asin(x / r))


def circle_rect_intersection_area(
    center: Point, radius: float, rect: Rect
) -> float:
    """Exact area of ``disk(center, radius) ∩ rect``.

    Degenerate inputs (zero radius or empty rectangle) have zero area.
    """
    r = radius
    if r <= 0.0 or not rect.is_valid():
        return 0.0
    # Translate so the disk is centered at the origin.
    x1 = rect.xmin - center.x
    x2 = rect.xmax - center.x
    y1 = rect.ymin - center.y
    y2 = rect.ymax - center.y

    # Clip the integration range to the disk's x-extent.
    a = max(x1, -r)
    b = min(x2, r)
    if a >= b or y1 >= y2:
        return 0.0

    # Branch breakpoints: where g(x) crosses |y1| and |y2|.
    cuts = {a, b}
    for y in (y1, y2):
        if abs(y) < r:
            x_cross = math.sqrt(r * r - y * y)
            for cut in (-x_cross, x_cross):
                if a < cut < b:
                    cuts.add(cut)
    xs = sorted(cuts)

    total = 0.0
    for left, right in zip(xs, xs[1:]):
        mid = 0.5 * (left + right)
        g_mid = math.sqrt(max(r * r - mid * mid, 0.0))
        # Ties go to the circle branch: when the arc is tangent to the edge
        # at the midpoint it lies (weakly) inside the edge across the whole
        # sub-interval, so the arc is the true boundary.
        upper_is_circle = g_mid <= y2
        lower_is_circle = -g_mid >= y1
        # Height at the midpoint decides whether the slab contributes.
        height = min(y2, g_mid) - max(y1, -g_mid)
        if height <= 0.0:
            continue
        width = right - left
        piece = 0.0
        # Upper boundary.
        if upper_is_circle:
            piece += _antiderivative(right, r) - _antiderivative(left, r)
        else:
            piece += y2 * width
        # Lower boundary (subtract its integral).
        if lower_is_circle:
            piece -= -(_antiderivative(right, r) - _antiderivative(left, r))
        else:
            piece -= y1 * width
        total += piece
    return max(total, 0.0)
