"""Planar geometry substrate for TNN query processing.

Provides the primitive types (:class:`Point`, :class:`Rect`) plus every
distance metric the paper relies on:

* ``mindist`` / ``minmaxdist`` — classic R-tree NN metrics (Roussopoulos
  et al., SIGMOD'95);
* ``min_trans_dist`` — Definition 1 / Lemma 1 (lower bound of the transitive
  distance through an MBR);
* ``max_dist`` — Definition 2 / Lemma 2 (tight upper bound over a segment);
* ``min_max_trans_dist`` — Definition 3 / Lemma 3 (upper bound guaranteed by
  the MBR face property);
* circle/ellipse–rectangle overlap ratios — Heuristics 1 and 2 used by the
  ANN pruning optimisation (Section 5 of the paper).

The scalar metrics are the correctness oracle; :mod:`repro.geometry.kernels`
provides bit-identical vectorised versions that evaluate whole MBR/point
batches per call and drive the hot paths.
"""

from repro.geometry import kernels
from repro.geometry.point import Point, distance, transitive_distance
from repro.geometry.rect import Rect
from repro.geometry.segment import (
    Segment,
    reflect_point,
    segments_intersect,
    segment_intersects_rect,
)
from repro.geometry.transitive import max_dist, min_max_trans_dist, min_trans_dist
from repro.geometry.polygon import clip_polygon_to_rect, polygon_area
from repro.geometry.shapes import (
    Circle,
    Ellipse,
    circle_rect_overlap_ratio,
    ellipse_rect_overlap_ratio,
)

__all__ = [
    "kernels",
    "Point",
    "Rect",
    "Segment",
    "Circle",
    "Ellipse",
    "distance",
    "transitive_distance",
    "reflect_point",
    "segments_intersect",
    "segment_intersects_rect",
    "min_trans_dist",
    "max_dist",
    "min_max_trans_dist",
    "clip_polygon_to_rect",
    "polygon_area",
    "circle_rect_overlap_ratio",
    "ellipse_rect_overlap_ratio",
]
