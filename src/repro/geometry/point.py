"""Points and the Euclidean / transitive distance primitives."""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """A point in the plane.

    ``Point`` is a :class:`~typing.NamedTuple` so instances are immutable,
    hashable, cheap to allocate and unpack naturally (``x, y = point``).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` — ``dis(p, s)`` in the paper."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint of the segment joining this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return math.hypot(a.x - b.x, a.y - b.y)


def transitive_distance(p: Point, s: Point, r: Point) -> float:
    """The transitive distance ``dis(p, s) + dis(s, r)``.

    This is the quantity a TNN query minimises over pairs ``(s, r)``.
    """
    return distance(p, s) + distance(s, r)
