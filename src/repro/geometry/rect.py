"""Axis-aligned rectangles (MBRs) and the classic R-tree distance metrics."""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, NamedTuple, Sequence, Tuple

from repro.geometry.point import Point


class Rect(NamedTuple):
    """An axis-aligned minimum bounding rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are legal: the MBR of a
    single point is a point-rectangle.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The tight MBR of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build an MBR from zero points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """The tight MBR enclosing a non-empty collection of rectangles."""
        rs = list(rects)
        if not rs:
            raise ValueError("cannot build an MBR from zero rectangles")
        return cls(
            min(r.xmin for r in rs),
            min(r.ymin for r in rs),
            max(r.xmax for r in rs),
            max(r.ymax for r in rs),
        )

    # ------------------------------------------------------------------
    # Basic predicates and accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def is_valid(self) -> bool:
        """True when the rectangle is non-empty (allows degenerate sides)."""
        return self.xmin <= self.xmax and self.ymin <= self.ymax

    def contains_point(self, p: Point) -> bool:
        """Closed containment test (boundary counts as inside)."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects_rect(self, other: "Rect") -> bool:
        """Closed intersection test with another rectangle."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def expanded(self, margin: float) -> "Rect":
        """A copy of this rectangle grown by ``margin`` on every side."""
        return Rect(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def corners(self) -> Sequence[Point]:
        """The four vertices in counter-clockwise order (cached per rect)."""
        return _corners_of(self)

    def sides(self) -> Sequence[tuple[Point, Point]]:
        """The four edges as ``(endpoint, endpoint)`` pairs, CCW (cached)."""
        return _sides_of(self)

    # ------------------------------------------------------------------
    # Distance metrics
    # ------------------------------------------------------------------
    def mindist(self, p: Point) -> float:
        """Minimum distance from ``p`` to this rectangle (0 when inside).

        The classic ``MINDIST`` lower bound of Roussopoulos et al.: no point
        in the rectangle can be closer to ``p``.
        """
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return math.hypot(dx, dy)

    def maxdist(self, p: Point) -> float:
        """Distance from ``p`` to the farthest corner of the rectangle."""
        dx = max(p.x - self.xmin, self.xmax - p.x)
        dy = max(p.y - self.ymin, self.ymax - p.y)
        return math.hypot(dx, dy)

    def minmaxdist(self, p: Point) -> float:
        """The ``MINMAXDIST`` upper bound of Roussopoulos et al.

        By the MBR face property every face of an R-tree MBR touches at least
        one data point, so some data point lies within ``minmaxdist`` of
        ``p``.  Computed as the minimum over dimensions of the distance to
        the nearer edge in that dimension combined with the farther edge in
        the other dimension.
        """
        cx = (self.xmin + self.xmax) / 2.0
        cy = (self.ymin + self.ymax) / 2.0
        # Nearer x edge, farther y corner.
        rm_x = self.xmin if p.x <= cx else self.xmax
        rM_y = self.ymin if p.y >= cy else self.ymax
        d1 = math.hypot(p.x - rm_x, p.y - rM_y)
        # Nearer y edge, farther x corner.
        rm_y = self.ymin if p.y <= cy else self.ymax
        rM_x = self.xmin if p.x >= cx else self.xmax
        d2 = math.hypot(p.x - rM_x, p.y - rm_y)
        return min(d1, d2)


# ----------------------------------------------------------------------
# Per-rect decomposition caches
# ----------------------------------------------------------------------
# Rect is a hashable NamedTuple, so an LRU keyed on the rect itself gives
# "compute once per rect" semantics without widening the tuple: the scalar
# bound functions (the kernels' correctness oracle and fallback path) probe
# corners()/sides() four-plus times per evaluation, and the heap-driven
# searches revisit the same MBRs across queries.


@lru_cache(maxsize=65536)
def _corners_of(rect: "Rect") -> Tuple[Point, Point, Point, Point]:
    return (
        Point(rect.xmin, rect.ymin),
        Point(rect.xmax, rect.ymin),
        Point(rect.xmax, rect.ymax),
        Point(rect.xmin, rect.ymax),
    )


@lru_cache(maxsize=65536)
def _sides_of(rect: "Rect") -> Tuple[Tuple[Point, Point], ...]:
    c = _corners_of(rect)
    return tuple((c[i], c[(i + 1) % 4]) for i in range(4))
