"""Command-line entry point: regenerate any figure/table of the paper.

Usage::

    tnn-experiments fig9a --scale 0.1 --queries 20
    tnn-experiments table3
    tnn-experiments all --scale 0.05 --queries 5
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.sim import experiments as exp

#: Every regenerable artifact, in the paper's order.
EXPERIMENTS: Dict[str, Callable] = {
    "fig9a": exp.fig9a,
    "fig9b": exp.fig9b,
    "fig9c": exp.fig9c,
    "fig9d": exp.fig9d,
    "fig11a": exp.fig11a,
    "fig11b": exp.fig11b,
    "fig11c": exp.fig11c,
    "fig11d": exp.fig11d,
    "fig12a": exp.fig12a,
    "fig12b": exp.fig12b,
    "fig12c": exp.fig12c,
    "fig12d": exp.fig12d,
    "fig13a": exp.fig13a,
    "fig13b": exp.fig13b,
    "table3": exp.table3,
}


def _render(name: str, outcome) -> str:
    if name == "table3":
        _rates, text = outcome
        return text
    return outcome.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tnn-experiments",
        description="Regenerate the evaluation figures/tables of the EDBT'08 "
        "multi-channel TNN paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "report"],
        help="which figure/table to regenerate ('all' runs everything; "
        "'report' writes a markdown report of every experiment)",
    )
    parser.add_argument(
        "--out",
        default="report.md",
        help="output path for the 'report' command (default: report.md)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset-size multiplier vs the paper (default: REPRO_SCALE or 0.1)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=None,
        help="queries per configuration (default: REPRO_QUERIES or 20; paper: 1000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally draw the series as an ASCII line chart",
    )
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from repro.sim.report import generate_report

        text = generate_report(
            scale=args.scale,
            n_queries=args.queries,
            seed=args.seed,
            progress=lambda name, dt: print(f"{name}: {dt:.1f}s"),
        )
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"report written to {args.out}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        outcome = EXPERIMENTS[name](
            scale=args.scale, n_queries=args.queries, seed=args.seed
        )
        elapsed = time.perf_counter() - started
        print(_render(name, outcome))
        if args.chart and name != "table3":
            from repro.sim.charts import render_chart

            print()
            print(
                render_chart(
                    outcome.x_values,
                    outcome.series,
                    title=f"[{outcome.experiment_id}] {outcome.metric}",
                )
            )
        print(f"({name} finished in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
