"""Canned experiments — one function per figure/table of the paper.

Every function returns an :class:`ExperimentSeries` (or a table structure
for Table 3) holding exactly the rows/series the corresponding figure
plots.  Dataset sizes default to ``REPRO_SCALE`` times the paper's (the
paper's testbed used up to 95,969 points and 1,000 queries per
configuration; a pure-Python laptop run scales this down), and
``REPRO_QUERIES`` queries per configuration.  Set ``REPRO_SCALE=1.0
REPRO_QUERIES=1000`` to reproduce at paper scale.

Every sweep executes through :class:`repro.engine.BatchRunner`, so
``REPRO_WORKERS=N`` fans each configuration's workload out over ``N``
worker processes (results are bit-identical to the in-process run).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.broadcast import SystemParameters
from repro.broadcast.config import PAPER_PAGE_CAPACITIES
from repro.core import (
    AnnOptimization,
    ApproximateTNN,
    DoubleNN,
    HybridNN,
    TNNEnvironment,
    WindowBasedTNN,
)
from repro.datasets import (
    PAPER_REGION_SIDE,
    UNIF_EXPONENTS,
    city_like,
    post_like,
    scale_to_region,
    sized_uniform,
    unif_by_exponent,
    unif_size,
    uniform,
)
from repro.engine import BatchRunner, QueryWorkload
from repro.geometry import Rect
from repro.sim.tables import format_series, format_table

#: Default scale-down of dataset sizes relative to the paper.
DEFAULT_SCALE = 0.1
#: Default queries per configuration (paper: 1,000).
DEFAULT_QUERIES = 20


class SweepCache:
    """Shared-cycle cache for sweep configurations.

    The figure sweeps rebuild near-identical broadcast programs per
    configuration: a density sweep reuses the same S dataset for every R
    density, Table 3 pairs the same datasets under four page capacities and
    across combinations, and the ANN sweeps share datasets across algorithm
    variants.  Packing an air index and laying out a program are
    deterministic in (dataset, page geometry, layout, m), so this cache
    keys packed trees on (dataset, leaf capacity, fanout) plus the
    layout's ``index_key()`` and broadcast programs on the tree key plus
    (params, m) and the layout's full ``cache_key()`` — backend type and
    every schedule parameter, so two
    :class:`~repro.broadcast.layout.BroadcastLayout` backends over the
    same dataset never alias each other's entries.  Every :func:`build`
    hit skips straight to the cached object — observationally identical
    to a rebuild.
    """

    #: FIFO eviction bounds — generous for any single sweep (Table 3 peaks
    #: at 16 tree configurations) while keeping a long multi-experiment
    #: process from accumulating every dataset it ever indexed.
    MAX_TREES = 64
    MAX_PROGRAMS = 256

    def __init__(self) -> None:
        self.trees: Dict[object, object] = {}
        self.programs: Dict[object, object] = {}

    def build(self, s_points, r_points, params=None, m=None, **kwargs) -> TNNEnvironment:
        """``TNNEnvironment.build`` with tree/program reuse."""
        env = TNNEnvironment.build(
            s_points,
            r_points,
            params,
            m=m,
            tree_cache=self.trees,
            program_cache=self.programs,
            **kwargs,
        )
        while len(self.trees) > self.MAX_TREES:
            self.trees.pop(next(iter(self.trees)))
        while len(self.programs) > self.MAX_PROGRAMS:
            self.programs.pop(next(iter(self.programs)))
        return env

    def clear(self) -> None:
        self.trees.clear()
        self.programs.clear()


#: Process-wide cache shared by every canned experiment in this module.
_SWEEP_CACHE = SweepCache()

#: The fixed-size series of Figure 9(a)/(b) (paper: 2,000..30,000 by 2,000;
#: we sample every other size to keep sweeps affordable by default).
SIZE_SWEEP = (2_000, 6_000, 10_000, 14_000, 18_000, 22_000, 26_000, 30_000)


def experiment_scale() -> float:
    """Dataset-size multiplier from ``REPRO_SCALE`` (default 0.1)."""
    return float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))


def queries_per_config() -> int:
    """Queries per configuration from ``REPRO_QUERIES`` (default 20)."""
    return int(os.environ.get("REPRO_QUERIES", DEFAULT_QUERIES))


def _scaled(n: int, scale: float) -> int:
    """A paper dataset size under the current scale (never below 50)."""
    return max(50, round(n * scale))


@dataclass
class ExperimentSeries:
    """The data behind one figure: an x-axis and one series per line."""

    experiment_id: str
    title: str
    metric: str
    x_label: str
    x_values: List[object] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append(value)

    def render(self) -> str:
        header = f"[{self.experiment_id}] {self.title} ({self.metric})"
        return format_series(self.x_label, self.x_values, self.series, title=header)


# ----------------------------------------------------------------------
# Shared sweep driver
# ----------------------------------------------------------------------
def _run_sweep(
    experiment_id: str,
    title: str,
    metric: str,
    x_label: str,
    x_values: Sequence[object],
    env_for: Callable[[object], TNNEnvironment],
    algorithms: Mapping[str, object],
    n_queries: int,
    seed: int,
) -> ExperimentSeries:
    out = ExperimentSeries(experiment_id, title, metric, x_label)
    for x in x_values:
        env = env_for(x)
        runner = BatchRunner(env, QueryWorkload(n_queries, seed=seed))
        stats = runner.run(algorithms)
        out.x_values.append(x)
        for name, st in stats.items():
            value = st.access_time.mean if metric == "access time" else st.tune_in.mean
            out.add(name, value)
    return out


def _exact_suite() -> Dict[str, object]:
    return {
        "window-based": WindowBasedTNN(),
        "approximate-tnn": ApproximateTNN(),
        "double-nn": DoubleNN(),
        "hybrid-nn": HybridNN(),
    }


# ----------------------------------------------------------------------
# Figure 9 — access time, exact search
# ----------------------------------------------------------------------
def fig9a(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 9(a): access time; |S| = 10,000 fixed, |R| sweeps 2k..30k."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    ns = _scaled(10_000, scale)

    def env_for(nr_paper):
        return _SWEEP_CACHE.build(
            sized_uniform(ns, seed=seed + 1),
            sized_uniform(_scaled(nr_paper, scale), seed=seed + 2),
        )

    return _run_sweep(
        "fig9a", f"|S|={ns} fixed, |R| sweeps", "access time", "|R| (paper size)",
        list(SIZE_SWEEP), env_for, _exact_suite(), n_queries, seed,
    )


def fig9b(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 9(b): access time; |R| = 10,000 fixed, |S| sweeps 2k..30k."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    nr = _scaled(10_000, scale)

    def env_for(ns_paper):
        return _SWEEP_CACHE.build(
            sized_uniform(_scaled(ns_paper, scale), seed=seed + 1),
            sized_uniform(nr, seed=seed + 2),
        )

    return _run_sweep(
        "fig9b", f"|R|={nr} fixed, |S| sweeps", "access time", "|S| (paper size)",
        list(SIZE_SWEEP), env_for, _exact_suite(), n_queries, seed,
    )


def _density_sweep(
    experiment_id: str,
    s_exponent: float,
    metric: str,
    algorithms: Mapping[str, object],
    scale: float,
    n_queries: int,
    seed: int,
    r_exponents: Sequence[float] = UNIF_EXPONENTS,
) -> ExperimentSeries:
    """Shared driver for the UNIF(E) density sweeps (Figs 9c/9d/11/13)."""
    ns = _scaled(unif_size(s_exponent), scale)
    s_pts = sized_uniform(ns, seed=seed + 1)

    def env_for(exp):
        nr = _scaled(unif_size(exp), scale)
        return _SWEEP_CACHE.build(s_pts, sized_uniform(nr, seed=seed + 2))

    return _run_sweep(
        experiment_id,
        f"S=UNIF({s_exponent}) ({ns} pts), R density sweeps",
        metric, "R density exponent",
        list(r_exponents), env_for, algorithms, n_queries, seed,
    )


def fig9c(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 9(c): access time; S = UNIF(-5.8), R sweeps all densities."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _density_sweep("fig9c", -5.8, "access time", _exact_suite(), scale, n_queries, seed)


def fig9d(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 9(d): access time; S = UNIF(-5.0), R sweeps all densities."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _density_sweep("fig9d", -5.0, "access time", _exact_suite(), scale, n_queries, seed)


# ----------------------------------------------------------------------
# Figure 11 — tune-in time, exact search
# ----------------------------------------------------------------------
def _fig11(experiment_id, s_exponent, scale, n_queries, seed, with_approx=False):
    algos: Dict[str, object] = {
        "window-based": WindowBasedTNN(),
        "double-nn": DoubleNN(),
        "hybrid-nn": HybridNN(),
    }
    if with_approx:
        algos["approximate-tnn"] = ApproximateTNN()
    return _density_sweep(
        experiment_id, s_exponent, "tune-in time", algos, scale, n_queries, seed
    )


def fig11a(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 11(a): tune-in; S = UNIF(-4.2) (dense), R sweeps."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig11("fig11a", -4.2, scale, n_queries, seed)


def fig11b(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 11(b): tune-in; S = UNIF(-5.0), R sweeps."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig11("fig11b", -5.0, scale, n_queries, seed)


def fig11c(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 11(c): tune-in; S = UNIF(-7.0) (sparse), R sweeps."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig11("fig11c", -7.0, scale, n_queries, seed)


def fig11d(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 11(d): tune-in incl. Approximate-TNN; S = UNIF(-5.0)."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig11("fig11d", -5.0, scale, n_queries, seed, with_approx=True)


# ----------------------------------------------------------------------
# Figure 12 — ANN vs eNN optimisation
# ----------------------------------------------------------------------
def fig12a(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 12(a): ANN vs eNN tune-in, equal-size datasets, factor = 1."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    ann = AnnOptimization(factor=1.0, density_aware=False)
    algos = {
        "window-eNN": WindowBasedTNN(),
        "window-ANN": WindowBasedTNN(optimization=ann),
        "double-eNN": DoubleNN(),
        "double-ANN": DoubleNN(optimization=ann),
    }

    def env_for(n_paper):
        n = _scaled(n_paper, scale)
        return _SWEEP_CACHE.build(
            sized_uniform(n, seed=seed + 1), sized_uniform(n, seed=seed + 2)
        )

    return _run_sweep(
        "fig12a", "equal sizes, ANN(factor=1) vs eNN", "tune-in time",
        "|S|=|R| (paper size)", [6_000, 10_000, 14_000, 18_000],
        env_for, algos, n_queries, seed,
    )


def _fig12_density(experiment_id, title, s_exp, r_exponents, scale, n_queries, seed):
    """Density-aware alpha (Section 6.2.2): exact on the sparse dataset."""
    ann = AnnOptimization(factor=1.0, density_aware=True)
    algos = {
        "window-eNN": WindowBasedTNN(),
        "window-ANN": WindowBasedTNN(optimization=ann),
        "double-eNN": DoubleNN(),
        "double-ANN": DoubleNN(optimization=ann),
    }
    ns = _scaled(unif_size(s_exp), scale)
    s_pts = sized_uniform(ns, seed=seed + 1)

    def env_for(exp):
        nr = _scaled(unif_size(exp), scale)
        return _SWEEP_CACHE.build(s_pts, sized_uniform(nr, seed=seed + 2))

    return _run_sweep(
        experiment_id, title, "tune-in time", "R density exponent",
        list(r_exponents), env_for, algos, n_queries, seed,
    )


def fig12b(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 12(b): density(S) > density(R); alpha = 0 on the sparse R."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig12_density(
        "fig12b", "S=UNIF(-4.6) denser than R", -4.6,
        (-7.0, -6.6, -6.2, -5.8, -5.4), scale, n_queries, seed,
    )


def fig12c(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 12(c): density(R) > density(S); alpha = 0 on the sparse S."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig12_density(
        "fig12c", "S=UNIF(-6.2) sparser than R", -6.2,
        (-5.4, -5.0, -4.6, -4.2), scale, n_queries, seed,
    )


def fig12d(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 12(d): ANN on real-like data (S=CITY, R=POST), 4 page sizes."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    region = Rect(0.0, 0.0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)
    s_pts = city_like(_scaled(6_000, scale), seed=seed + 101)
    r_pts = scale_to_region(post_like(_scaled(100_000, scale), seed=seed + 202), region)
    ann = AnnOptimization(factor=1.0, density_aware=True)
    algos = {
        "window-eNN": WindowBasedTNN(),
        "window-ANN": WindowBasedTNN(optimization=ann),
        "double-eNN": DoubleNN(),
        "double-ANN": DoubleNN(optimization=ann),
    }

    def env_for(capacity):
        return _SWEEP_CACHE.build(
            s_pts, r_pts, SystemParameters(page_capacity=capacity)
        )

    return _run_sweep(
        "fig12d", "CITY-like vs POST-like, page-capacity sweep", "tune-in time",
        "page capacity (bytes)", list(PAPER_PAGE_CAPACITIES),
        env_for, algos, n_queries, seed,
    )


# ----------------------------------------------------------------------
# Figure 13 — Hybrid-NN with ANN (factor 1/150 and 1/200)
# ----------------------------------------------------------------------
def _fig13(experiment_id, s_exponent, scale, n_queries, seed):
    algos = {
        "hybrid-eNN": HybridNN(),
        "hybrid-ANN-1/150": HybridNN(
            optimization=AnnOptimization(factor=1.0 / 150, density_aware=True)
        ),
        "hybrid-ANN-1/200": HybridNN(
            optimization=AnnOptimization(factor=1.0 / 200, density_aware=True)
        ),
    }
    return _density_sweep(
        experiment_id, s_exponent, "tune-in time", algos, scale, n_queries, seed,
        r_exponents=(-6.2, -5.8, -5.4, -5.0, -4.6, -4.2),
    )


def fig13a(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 13(a): Hybrid-NN +- ANN; S = UNIF(-5.0)."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig13("fig13a", -5.0, scale, n_queries, seed)


def fig13b(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Fig 13(b): Hybrid-NN +- ANN; S = UNIF(-5.4)."""
    scale = experiment_scale() if scale is None else scale
    n_queries = queries_per_config() if n_queries is None else n_queries
    return _fig13("fig13b", -5.4, scale, n_queries, seed)


# ----------------------------------------------------------------------
# Table 3 — Approximate-TNN fail rate by distribution combination
# ----------------------------------------------------------------------
def table3(scale: float | None = None, n_queries: int | None = None, seed: int = 0):
    """Table 3: Approximate-TNN fail rate per distribution combination.

    Averaged over the paper's page capacities; failure = the estimated
    circle misses the true answer (checked against the exact Double-NN on
    the identical workload).

    Unlike the figure sweeps, this table defaults to **full paper
    cardinality** (``REPRO_TABLE3_SCALE``, default 1.0): Equation 1's
    radius shrinks as ``ln(n)/sqrt(n)``, so failures on skewed data only
    emerge at realistic dataset sizes — at a 0.1 scale the radius covers
    half the region and nothing ever fails.
    """
    if scale is None:
        scale = float(os.environ.get("REPRO_TABLE3_SCALE", 1.0))
    n_queries = queries_per_config() if n_queries is None else n_queries
    region = Rect(0.0, 0.0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)

    n_uni = _scaled(6_000, scale)
    n_city = _scaled(6_000, scale)
    n_post = _scaled(100_000, scale)
    uni_a = uniform(n_uni, seed=seed + 11, region=region)
    uni_b = uniform(n_uni, seed=seed + 12, region=region)
    city = city_like(n_city, seed=seed + 101)
    post = scale_to_region(post_like(n_post, seed=seed + 202), region)

    combos = {
        "uni-uni": (uni_a, uni_b),
        "uni-real": (uni_b, city),
        "real-uni": (city, uni_a),
        "real-real": (city, post),
    }

    rows = []
    fail_rates: Dict[str, float] = {}
    for name, (s_pts, r_pts) in combos.items():
        rates = []
        for capacity in PAPER_PAGE_CAPACITIES:
            env = _SWEEP_CACHE.build(
                s_pts, r_pts, SystemParameters(page_capacity=capacity)
            )
            runner = BatchRunner(env, QueryWorkload(n_queries, seed=seed))
            rates.append(runner.compare_failures(ApproximateTNN(), DoubleNN()))
        fail_rates[name] = sum(rates) / len(rates)
        rows.append([name, f"{fail_rates[name] * 100:.1f}%"])

    text = format_table(
        ["distribution combination", "average fail rate"],
        rows,
        title="[table3] Approximate-TNN fail rate",
    )
    return fail_rates, text
