"""Experiment harness: workloads, runners, statistics and canned experiments.

``repro.sim.experiments`` contains one function per figure/table of the
paper's evaluation (Section 6); the benchmark modules under ``benchmarks/``
and the ``tnn-experiments`` CLI both call into it.  Experiment scale is
controlled by the ``REPRO_SCALE`` (dataset-size multiplier) and
``REPRO_QUERIES`` (queries per configuration) environment variables so the
paper-scale run and a minutes-long laptop run share one code path.
"""

from repro.sim.stats import MetricStats, ResultStats, summarize, summarize_batch
from repro.sim.runner import ExperimentRunner, QueryWorkload
from repro.sim.tables import format_series, format_table
from repro.sim.experiments import (
    ExperimentSeries,
    experiment_scale,
    queries_per_config,
)
from repro.sim.trace import render_timeline, trace_summary
from repro.sim.charts import render_chart

__all__ = [
    "render_timeline",
    "trace_summary",
    "render_chart",
    "MetricStats",
    "ResultStats",
    "summarize",
    "summarize_batch",
    "ExperimentRunner",
    "QueryWorkload",
    "format_series",
    "format_table",
    "ExperimentSeries",
    "experiment_scale",
    "queries_per_config",
]
