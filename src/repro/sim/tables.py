"""Plain-text rendering of experiment series and tables.

The paper reports line charts (figures) and tables; in a terminal-first
reproduction we print the underlying numbers as aligned columns — the same
rows/series the figures plot.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render an x-axis plus one column per named series (a figure's data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)
