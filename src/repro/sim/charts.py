"""Terminal line charts for experiment series.

The paper presents its evaluation as line figures; this renderer draws the
same series as an ASCII chart so `tnn-experiments --chart` gives an
at-a-glance visual in any terminal, no plotting stack required.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Glyphs assigned to series in declaration order.
MARKERS = "ox+*#@%&"


def render_chart(
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render named series as an ASCII line chart with a legend.

    X positions are equally spaced in input order (the sweeps use
    categorical / log-spaced axes); Y is linearly scaled between the global
    min and max of all series.
    """
    if not series:
        raise ValueError("chart needs at least one series")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_values)}:
        raise ValueError("all series must match the x-axis length")
    if len(x_values) < 2:
        raise ValueError("chart needs at least two x positions")
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")

    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    if math.isclose(lo, hi):
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(i: int) -> int:
        return round(i * (width - 1) / (len(x_values) - 1))

    def to_row(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for marker, (name, values) in zip(MARKERS, series.items()):
        # Connect consecutive points with linear interpolation.
        for i in range(len(values) - 1):
            c0, c1 = to_col(i), to_col(i + 1)
            v0, v1 = values[i], values[i + 1]
            for c in range(c0, c1 + 1):
                t = (c - c0) / (c1 - c0) if c1 > c0 else 0.0
                r = to_row(v0 + t * (v1 - v0))
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for i, v in enumerate(values):
            grid[to_row(v)][to_col(i)] = marker

    lines = []
    if title:
        lines.append(title)
    y_labels = [f"{hi:.4g}", f"{(lo + hi) / 2:.4g}", f"{lo:.4g}"]
    label_w = max(len(s) for s in y_labels)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_labels[0]
        elif r == height // 2:
            label = y_labels[1]
        elif r == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_values[0]} .. {x_values[-1]}"
    lines.append(" " * (label_w + 2) + x_axis)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
