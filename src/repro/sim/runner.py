"""Workload generation and the per-configuration experiment runner.

Both classes are now thin wrappers over :mod:`repro.engine`:
:class:`QueryWorkload` is re-exported from
:mod:`repro.engine.workload`, and :class:`ExperimentRunner` delegates to
:class:`repro.engine.batch.BatchRunner`, which adds process-pool fan-out,
vectorised aggregation and cached oracle results while keeping this
historical API unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.batch import BatchRunner
from repro.engine.workload import QueryWorkload
from repro.geometry import Point
from repro.sim.stats import ResultStats

__all__ = ["ExperimentRunner", "QueryWorkload"]


class ExperimentRunner:
    """Runs a set of algorithms over one environment and workload.

    Back-compat facade over :class:`~repro.engine.batch.BatchRunner`; new
    code should use the engine directly.
    """

    def __init__(
        self,
        env: TNNEnvironment,
        workload: QueryWorkload,
        workers: Optional[int] = None,
    ) -> None:
        self.env = env
        self.workload = workload
        self._batch = BatchRunner(env, workload, workers=workers)
        self._queries: List[Tuple[Point, float, float]] = self._batch.queries

    def run_algorithm(self, algorithm: TNNAlgorithm) -> List[TNNResult]:
        """All per-query results of one algorithm over the workload."""
        return self._batch.run_algorithm(algorithm)

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, ResultStats]:
        """Summary statistics per algorithm name, on the shared workload."""
        return self._batch.run(algorithms)

    def compare_failures(
        self,
        candidate: TNNAlgorithm,
        reference: TNNAlgorithm,
        rel_tol: float = 1e-9,
    ) -> float:
        """Fraction of queries where ``candidate`` misses the true answer.

        ``reference`` must be an exact algorithm (Double-NN is the cheap
        choice); a query counts as failed when the candidate returns no
        pair or a strictly larger transitive distance.
        """
        return self._batch.compare_failures(candidate, reference, rel_tol=rel_tol)
