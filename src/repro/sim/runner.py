"""Workload generation and the per-configuration experiment runner."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.geometry import Point
from repro.sim.stats import ResultStats, summarize


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of queries for one environment.

    Each query consists of a uniform query point plus an independent random
    phase per channel (Section 6: 1,000 random query points; random waits
    for the two roots).  Algorithms compared on the same workload see the
    *same* points and phases, so differences are purely algorithmic.
    """

    n_queries: int
    seed: int = 0

    def queries(self, env: TNNEnvironment) -> List[Tuple[Point, float, float]]:
        rng = random.Random(self.seed)
        out = []
        for _ in range(self.n_queries):
            p = env.random_query_point(rng)
            phase_s, phase_r = env.random_phases(rng)
            out.append((p, phase_s, phase_r))
        return out


class ExperimentRunner:
    """Runs a set of algorithms over one environment and workload."""

    def __init__(self, env: TNNEnvironment, workload: QueryWorkload) -> None:
        self.env = env
        self.workload = workload
        self._queries = workload.queries(env)

    def run_algorithm(self, algorithm: TNNAlgorithm) -> List[TNNResult]:
        """All per-query results of one algorithm over the workload."""
        return [
            algorithm.run(self.env, p, phase_s, phase_r)
            for p, phase_s, phase_r in self._queries
        ]

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, ResultStats]:
        """Summary statistics per algorithm name, on the shared workload."""
        return {
            name: summarize(self.run_algorithm(algo))
            for name, algo in algorithms.items()
        }

    def compare_failures(
        self,
        candidate: TNNAlgorithm,
        reference: TNNAlgorithm,
        rel_tol: float = 1e-9,
    ) -> float:
        """Fraction of queries where ``candidate`` misses the true answer.

        ``reference`` must be an exact algorithm (Double-NN is the cheap
        choice); a query counts as failed when the candidate returns no
        pair or a strictly larger transitive distance.
        """
        failures = 0
        for p, phase_s, phase_r in self._queries:
            got = candidate.run(self.env, p, phase_s, phase_r)
            want = reference.run(self.env, p, phase_s, phase_r)
            if got.failed or got.distance > want.distance * (1 + rel_tol):
                failures += 1
        return failures / len(self._queries)
