"""One-shot markdown report of the whole reproduction.

``tnn-experiments report`` runs every figure/table experiment at the
current scale and writes a self-contained markdown document with all the
regenerated rows — the machine-written companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.sim import experiments as exp

#: Experiment id -> (callable, one-line description).
REPORT_SECTIONS: Dict[str, tuple] = {
    "fig9a": (exp.fig9a, "Access time; |S| = 10,000 fixed, |R| sweeps"),
    "fig9b": (exp.fig9b, "Access time; |R| = 10,000 fixed, |S| sweeps"),
    "fig9c": (exp.fig9c, "Access time; S = UNIF(-5.8), R density sweeps"),
    "fig9d": (exp.fig9d, "Access time; S = UNIF(-5.0), R density sweeps"),
    "fig11a": (exp.fig11a, "Tune-in; S = UNIF(-4.2)"),
    "fig11b": (exp.fig11b, "Tune-in; S = UNIF(-5.0)"),
    "fig11c": (exp.fig11c, "Tune-in; S = UNIF(-7.0)"),
    "fig11d": (exp.fig11d, "Tune-in incl. Approximate-TNN; S = UNIF(-5.0)"),
    "fig12a": (exp.fig12a, "ANN vs eNN; equal sizes, factor = 1"),
    "fig12b": (exp.fig12b, "ANN vs eNN; density(S) > density(R)"),
    "fig12c": (exp.fig12c, "ANN vs eNN; density(R) > density(S)"),
    "fig12d": (exp.fig12d, "ANN on CITY/POST-like data, page-size sweep"),
    "fig13a": (exp.fig13a, "Hybrid-NN with ANN; S = UNIF(-5.0)"),
    "fig13b": (exp.fig13b, "Hybrid-NN with ANN; S = UNIF(-5.4)"),
    "table3": (exp.table3, "Approximate-TNN fail rate by distribution"),
}


def generate_report(
    scale: Optional[float] = None,
    n_queries: Optional[int] = None,
    seed: int = 0,
    progress: Optional[Callable[[str, float], None]] = None,
) -> str:
    """Run every experiment and return the markdown report text."""
    effective_scale = exp.experiment_scale() if scale is None else scale
    effective_queries = exp.queries_per_config() if n_queries is None else n_queries

    lines = [
        "# TNN multi-channel reproduction — full experiment report",
        "",
        f"- dataset scale vs paper: **{effective_scale:g}**",
        f"- queries per configuration: **{effective_queries}** (paper: 1,000)",
        f"- workload seed: **{seed}**",
        "",
        "Both metrics are in broadcast pages: access time is the max over",
        "the two channels, tune-in time the sum.  See EXPERIMENTS.md for",
        "the paper-vs-measured claim checklist.",
        "",
    ]
    for name, (fn, description) in REPORT_SECTIONS.items():
        started = time.perf_counter()
        outcome = fn(scale=scale, n_queries=n_queries, seed=seed)
        elapsed = time.perf_counter() - started
        if progress is not None:
            progress(name, elapsed)
        rendered = outcome[1] if name == "table3" else outcome.render()
        lines.append(f"## {name} — {description}")
        lines.append("")
        lines.append("```text")
        lines.append(rendered)
        lines.append("```")
        lines.append("")
        lines.append(f"_regenerated in {elapsed:.1f}s_")
        lines.append("")
    return "\n".join(lines)
