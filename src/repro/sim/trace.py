"""Query trace inspection: what did the radio do, and when?

Every :class:`~repro.broadcast.ChannelTuner` logs each reception attempt
as ``(kind, ref, arrival, ok)``.  This module turns those logs into
human-readable artifacts:

* :func:`trace_summary` — per-channel totals (pages, losses, active ratio);
* :func:`render_timeline` — an ASCII strip per channel showing when the
  radio was active, which makes the doze-mode behaviour of air indexing
  (short bursts of listening separated by long sleeps) directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.broadcast.tuner import ChannelTuner

#: One logged reception attempt.
TraceEvent = Tuple[str, int, float, bool]


@dataclass(frozen=True)
class ChannelTraceSummary:
    """Aggregates of one channel's reception log."""

    pages: int
    index_pages: int
    data_pages: int
    lost_pages: int
    first_event: float
    last_event: float

    @property
    def span(self) -> float:
        """Pages elapsed between first and last reception."""
        return max(self.last_event - self.first_event, 0.0)

    @property
    def duty_cycle(self) -> float:
        """Fraction of the spanned time the radio was active."""
        if self.span <= 0:
            return 1.0 if self.pages else 0.0
        return min(self.pages / (self.span + 1.0), 1.0)


def trace_summary(tuner: ChannelTuner) -> ChannelTraceSummary:
    """Summarise one tuner's reception log."""
    events: List[TraceEvent] = list(tuner.log)
    if not events:
        return ChannelTraceSummary(0, 0, 0, 0, 0.0, 0.0)
    arrivals = [t for _, _, t, _ in events]
    return ChannelTraceSummary(
        pages=len(events),
        index_pages=sum(1 for k, _, _, _ in events if k == "index"),
        data_pages=sum(1 for k, _, _, _ in events if k == "data"),
        lost_pages=sum(1 for _, _, _, ok in events if not ok),
        first_event=min(arrivals),
        last_event=max(arrivals),
    )


def render_timeline(
    tuners: Sequence[ChannelTuner],
    labels: Sequence[str] | None = None,
    width: int = 72,
) -> str:
    """ASCII activity strips, one per channel, over a shared time axis.

    ``#`` marks slots with a successful reception, ``!`` a lost one and
    ``.`` dozing.  Multiple events mapping to one cell keep the "worst"
    glyph (loss beats success beats doze).
    """
    if not tuners:
        raise ValueError("need at least one tuner")
    if labels is None:
        labels = [f"ch{i + 1}" for i in range(len(tuners))]
    if len(labels) != len(tuners):
        raise ValueError("one label per tuner required")
    horizon = max((t.now for t in tuners), default=0.0)
    if horizon <= 0:
        raise ValueError("tuners have no activity to render")

    lines = []
    label_w = max(len(l) for l in labels)
    for label, tuner in zip(labels, tuners):
        cells = ["."] * width
        for _, _, arrival, ok in tuner.log:
            cell = min(int(arrival / horizon * width), width - 1)
            if not ok:
                cells[cell] = "!"
            elif cells[cell] != "!":
                cells[cell] = "#"
        lines.append(f"{label:>{label_w}} |{''.join(cells)}|")
    axis = f"{'':>{label_w}}  0{'':<{width - len(str(round(horizon))) - 1}}{round(horizon)}"
    lines.append(axis)
    lines.append(f"{'':>{label_w}}  (# received, ! lost, . dozing; pages)")
    return "\n".join(lines)
