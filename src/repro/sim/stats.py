"""Aggregation of per-query results into the paper's reported metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.core.result import TNNResult


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics of one metric over a batch of queries."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricStats":
        if not values:
            raise ValueError("cannot summarise zero values")
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(var),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )


@dataclass(frozen=True)
class ResultStats:
    """The paper's two metrics plus phase breakdown, over a query batch."""

    algorithm: str
    access_time: MetricStats
    tune_in: MetricStats
    estimate_pages: MetricStats
    filter_pages: MetricStats
    fail_rate: float


def summarize(results: Iterable[TNNResult]) -> ResultStats:
    """Aggregate one algorithm's results over a workload."""
    batch: List[TNNResult] = list(results)
    if not batch:
        raise ValueError("cannot summarise zero results")
    return ResultStats(
        algorithm=batch[0].algorithm,
        access_time=MetricStats.of([r.access_time for r in batch]),
        tune_in=MetricStats.of([float(r.tune_in_time) for r in batch]),
        estimate_pages=MetricStats.of([float(r.estimate_pages) for r in batch]),
        filter_pages=MetricStats.of([float(r.filter_pages) for r in batch]),
        fail_rate=sum(1 for r in batch if r.failed) / len(batch),
    )
