"""Aggregation of per-query results into the paper's reported metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.result import TNNResult


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics of one metric over a batch of queries."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricStats":
        if not values:
            raise ValueError("cannot summarise zero values")
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(var),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )

    @classmethod
    def of_array(cls, values: np.ndarray) -> "MetricStats":
        """Vectorised equivalent of :meth:`of` for a 1-D float array."""
        if values.size == 0:
            raise ValueError("cannot summarise zero values")
        mean = float(values.mean())
        var = float(np.mean((values - mean) ** 2))
        return cls(
            mean=mean,
            std=math.sqrt(var),
            minimum=float(values.min()),
            maximum=float(values.max()),
            count=int(values.size),
        )


@dataclass(frozen=True)
class ResultStats:
    """The paper's two metrics plus phase breakdown, over a query batch."""

    algorithm: str
    access_time: MetricStats
    tune_in: MetricStats
    estimate_pages: MetricStats
    filter_pages: MetricStats
    fail_rate: float


def summarize(results: Iterable[TNNResult]) -> ResultStats:
    """Aggregate one algorithm's results over a workload."""
    batch: List[TNNResult] = list(results)
    if not batch:
        raise ValueError("cannot summarise zero results")
    return ResultStats(
        algorithm=batch[0].algorithm,
        access_time=MetricStats.of([r.access_time for r in batch]),
        tune_in=MetricStats.of([float(r.tune_in_time) for r in batch]),
        estimate_pages=MetricStats.of([float(r.estimate_pages) for r in batch]),
        filter_pages=MetricStats.of([float(r.filter_pages) for r in batch]),
        fail_rate=sum(1 for r in batch if r.failed) / len(batch),
    )


def summarize_batch(results: Iterable[TNNResult]) -> ResultStats:
    """Vectorised :func:`summarize` — one numpy pass per metric column.

    The batch engine aggregates thousands of per-query results per
    configuration; columnising the batch once and reducing with numpy keeps
    aggregation negligible next to query execution.
    """
    batch: List[TNNResult] = list(results)
    if not batch:
        raise ValueError("cannot summarise zero results")
    n = len(batch)
    columns = np.empty((4, n), dtype=float)
    failed = 0
    for i, r in enumerate(batch):
        columns[0, i] = r.access_time
        columns[1, i] = r.tune_in_time
        columns[2, i] = r.estimate_pages
        columns[3, i] = r.filter_pages
        failed += r.failed
    return ResultStats(
        algorithm=batch[0].algorithm,
        access_time=MetricStats.of_array(columns[0]),
        tune_in=MetricStats.of_array(columns[1]),
        estimate_pages=MetricStats.of_array(columns[2]),
        filter_pages=MetricStats.of_array(columns[3]),
        fail_rate=failed / n,
    )
