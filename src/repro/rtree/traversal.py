"""In-memory reference query algorithms over packed R-trees.

These are the disk/memory analogues of the broadcast-side searches: the
best-first NN of Hjaltason & Samet (TODS'99), a circle range search, and a
best-first *transitive* NN that minimises ``dis(p,s)+dis(s,r)`` using the
paper's MinTransDist metric.  The broadcast client in :mod:`repro.client`
must produce identical answers (at different page cost); the test suite
checks that equivalence, and the TNN oracle below is the ground truth for
every algorithm's correctness tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable, List, Optional, Tuple

from repro.geometry import Circle, Point, Rect, distance, min_trans_dist
from repro.rtree.tree import RTree


def best_first_nn(tree: RTree, query: Point) -> Tuple[Point, float]:
    """Exact nearest neighbor via best-first (priority queue on MINDIST)."""
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [(tree.root.mbr.mindist(query), next(counter), tree.root)]
    best: Optional[Point] = None
    best_dist = math.inf
    while heap:
        dist, _, item = heapq.heappop(heap)
        if dist > best_dist:
            break
        if isinstance(item, Point):
            best, best_dist = item, dist
            break
        node = item
        if node.is_leaf:
            for p in node.points:
                heapq.heappush(heap, (distance(query, p), next(counter), p))
        else:
            for child in node.children:
                heapq.heappush(heap, (child.mbr.mindist(query), next(counter), child))
    if best is None:
        raise ValueError("NN search over an empty tree")
    return best, best_dist


def best_first_knn(tree: RTree, query: Point, k: int) -> List[Tuple[Point, float]]:
    """The k nearest neighbors in ascending distance order."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [(tree.root.mbr.mindist(query), next(counter), tree.root)]
    out: List[Tuple[Point, float]] = []
    while heap and len(out) < k:
        dist, _, item = heapq.heappop(heap)
        if isinstance(item, Point):
            out.append((item, dist))
            continue
        node = item
        if node.is_leaf:
            for p in node.points:
                heapq.heappush(heap, (distance(query, p), next(counter), p))
        else:
            for child in node.children:
                heapq.heappush(heap, (child.mbr.mindist(query), next(counter), child))
    return out


def range_search(tree: RTree, circle: Circle) -> List[Point]:
    """All indexed points within the (closed) circle."""
    result: List[Point] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not circle.intersects_rect(node.mbr):
            continue
        if node.is_leaf:
            result.extend(p for p in node.points if circle.contains_point(p))
        else:
            stack.extend(node.children)
    return result


def window_search(tree: RTree, window: Rect) -> List[Point]:
    """All indexed points inside the (closed) rectangular window."""
    result: List[Point] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not window.intersects_rect(node.mbr):
            continue
        if node.is_leaf:
            result.extend(p for p in node.points if window.contains_point(p))
        else:
            stack.extend(node.children)
    return result


def transitive_nn(tree: RTree, p: Point, r: Point) -> Tuple[Point, float]:
    """The point ``s`` in the tree minimising ``dis(p,s) + dis(s,r)``.

    Best-first on the MinTransDist lower bound (Definition 1) — the
    in-memory analogue of Hybrid-NN's Case 3 search.
    """
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [
        (min_trans_dist(p, tree.root.mbr, r), next(counter), tree.root)
    ]
    best: Optional[Point] = None
    best_dist = math.inf
    while heap:
        dist, _, item = heapq.heappop(heap)
        if dist > best_dist:
            break
        if isinstance(item, Point):
            best, best_dist = item, dist
            break
        node = item
        if node.is_leaf:
            for s in node.points:
                heapq.heappush(
                    heap, (distance(p, s) + distance(s, r), next(counter), s)
                )
        else:
            for child in node.children:
                heapq.heappush(
                    heap, (min_trans_dist(p, child.mbr, r), next(counter), child)
                )
    if best is None:
        raise ValueError("transitive NN search over an empty tree")
    return best, best_dist


def tnn_oracle(
    p: Point, s_tree: RTree, r_tree: RTree
) -> Tuple[Point, Point, float]:
    """Ground-truth TNN answer: the pair ``(s, r)`` minimising
    ``dis(p,s) + dis(s,r)``.

    Enumerates every ``s`` in ``s_tree`` (with an incremental lower-bound
    cutoff) and pairs it with its exact NN in ``r_tree``.  O(|S| log |R|)
    — fast enough to serve as the oracle in tests and the fail-rate table.
    """
    best_pair: Optional[Tuple[Point, Point]] = None
    best_dist = math.inf
    for s in s_tree.iter_points():
        d_ps = distance(p, s)
        if d_ps >= best_dist:
            continue
        r, d_sr = best_first_nn(r_tree, s)
        total = d_ps + d_sr
        if total < best_dist:
            best_dist = total
            best_pair = (s, r)
    if best_pair is None:
        raise ValueError("TNN oracle over empty datasets")
    return best_pair[0], best_pair[1], best_dist


def brute_force_tnn(
    p: Point, s_points: Iterable[Point], r_points: Iterable[Point]
) -> Tuple[Point, Point, float]:
    """Quadratic TNN join over raw point sets (small-instance ground truth)."""
    s_list = list(s_points)
    r_list = list(r_points)
    if not s_list or not r_list:
        raise ValueError("TNN requires non-empty datasets")
    best_pair = None
    best_dist = math.inf
    for s in s_list:
        d_ps = distance(p, s)
        if d_ps >= best_dist:
            continue
        for r in r_list:
            total = d_ps + distance(s, r)
            if total < best_dist:
                best_dist = total
                best_pair = (s, r)
    return best_pair[0], best_pair[1], best_dist
