"""In-memory reference query algorithms over packed R-trees.

These are the disk/memory analogues of the broadcast-side searches: the
best-first NN of Hjaltason & Samet (TODS'99), a circle range search, and a
best-first *transitive* NN that minimises ``dis(p,s)+dis(s,r)`` using the
paper's MinTransDist metric.  The broadcast client in :mod:`repro.client`
must produce identical answers (at different page cost); the test suite
checks that equivalence, and the TNN oracle below is the ground truth for
every algorithm's correctness tests.

Expansion loops run on the vectorised geometry kernels
(:mod:`repro.geometry.kernels`): one kernel call evaluates the bound for a
whole node fan-out against the node's cached child-MBR / leaf-point arrays.
The kernels are bit-identical to the scalar metrics, so answers do not
depend on the path taken; dispatch is adaptive (fan-outs below
``kernels.min_batch()`` stay scalar, where the fixed ufunc cost would
dominate) and ``kernels.use_kernels(False)`` / ``REPRO_NO_KERNELS=1``
restores the scalar loops wholesale for A/B benchmarking.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable, List, Optional, Tuple

from repro.geometry import Circle, Point, Rect, distance, min_trans_dist
from repro.geometry import kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


def _push_children_point(
    node: RTreeNode, query: Point, heap: list, counter, use_kernels: bool
) -> None:
    """Push an internal node's children keyed by MINDIST."""
    if use_kernels and node.fanout >= kernels.min_batch_point():
        bounds = kernels.mindist(query, node.child_mbr_array()).tolist()
        for child, b in zip(node.children, bounds):
            heapq.heappush(heap, (b, next(counter), child))
    else:
        for child in node.children:
            heapq.heappush(heap, (child.mbr.mindist(query), next(counter), child))


def _push_leaf_min(
    node: RTreeNode, heap: list, counter, dists, points
) -> None:
    """Push only a leaf's closest candidate (single-answer searches).

    Valid for k = 1 best-first searches: non-minimal points of a leaf can
    never pop before the leaf's minimum, ties resolve to the first index
    exactly as the scalar sequential scan does, and relative push order
    against other entries is preserved — the returned answer is
    bit-identical to pushing the whole fan-out.
    """
    best_i = 0
    best_d = dists[0]
    for i in range(1, len(dists)):
        if dists[i] < best_d:
            best_d = dists[i]
            best_i = i
    heapq.heappush(heap, (best_d, next(counter), points[best_i]))


def best_first_nn(tree: RTree, query: Point) -> Tuple[Point, float]:
    """Exact nearest neighbor via best-first (priority queue on MINDIST)."""
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [(tree.root.mbr.mindist(query), next(counter), tree.root)]
    best: Optional[Point] = None
    best_dist = math.inf
    use_kernels = kernels.enabled()
    while heap:
        dist, _, item = heapq.heappop(heap)
        if dist > best_dist:
            break
        if isinstance(item, Point):
            best, best_dist = item, dist
            break
        node = item
        if node.is_leaf:
            if use_kernels:
                if node.fanout >= kernels.min_batch_point():
                    dists = kernels.point_dists(query, node.points_array()).tolist()
                else:
                    dists = [distance(query, p) for p in node.points]
                _push_leaf_min(node, heap, counter, dists, node.points)
            else:
                for p in node.points:
                    heapq.heappush(heap, (distance(query, p), next(counter), p))
        else:
            _push_children_point(node, query, heap, counter, use_kernels)
    if best is None:
        raise ValueError("NN search over an empty tree")
    return best, best_dist


def best_first_knn(tree: RTree, query: Point, k: int) -> List[Tuple[Point, float]]:
    """The k nearest neighbors in ascending distance order."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [(tree.root.mbr.mindist(query), next(counter), tree.root)]
    out: List[Tuple[Point, float]] = []
    use_kernels = kernels.enabled()
    while heap and len(out) < k:
        dist, _, item = heapq.heappop(heap)
        if isinstance(item, Point):
            out.append((item, dist))
            continue
        node = item
        if node.is_leaf:
            if use_kernels and node.fanout >= kernels.min_batch_point():
                dists = kernels.point_dists(query, node.points_array()).tolist()
                for p, d in zip(node.points, dists):
                    heapq.heappush(heap, (d, next(counter), p))
            else:
                for p in node.points:
                    heapq.heappush(heap, (distance(query, p), next(counter), p))
        else:
            _push_children_point(node, query, heap, counter, use_kernels)
    return out


def range_search(tree: RTree, circle: Circle) -> List[Point]:
    """All indexed points within the (closed) circle."""
    batch_min = kernels.min_batch_point() if kernels.enabled() else -1
    result: List[Point] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not circle.intersects_rect(node.mbr):
            continue
        if node.is_leaf:
            if batch_min >= 0 and node.fanout >= batch_min:
                keep = kernels.point_dists(circle.center, node.points_array())
                result.extend(
                    itertools.compress(node.points, keep <= circle.radius)
                )
            else:
                result.extend(p for p in node.points if circle.contains_point(p))
        else:
            if batch_min >= 0 and node.fanout >= batch_min:
                # Pre-filter the fan-out in one kernel call; survivors pass
                # the (identical) pop-time test again by construction.
                hits = kernels.mindist(circle.center, node.child_mbr_array())
                stack.extend(
                    itertools.compress(node.children, hits <= circle.radius)
                )
            else:
                stack.extend(node.children)
    return result


def window_search(tree: RTree, window: Rect) -> List[Point]:
    """All indexed points inside the (closed) rectangular window."""
    batch_min = kernels.min_batch() if kernels.enabled() else -1
    result: List[Point] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not window.intersects_rect(node.mbr):
            continue
        if node.is_leaf:
            if batch_min >= 0 and node.fanout >= batch_min:
                pts = node.points_array()
                keep = (
                    (window.xmin <= pts[:, 0])
                    & (pts[:, 0] <= window.xmax)
                    & (window.ymin <= pts[:, 1])
                    & (pts[:, 1] <= window.ymax)
                )
                result.extend(itertools.compress(node.points, keep))
            else:
                result.extend(p for p in node.points if window.contains_point(p))
        else:
            if batch_min >= 0 and node.fanout >= batch_min:
                mbrs = node.child_mbr_array()
                hits = (
                    (mbrs[:, 0] <= window.xmax)
                    & (mbrs[:, 2] >= window.xmin)
                    & (mbrs[:, 1] <= window.ymax)
                    & (mbrs[:, 3] >= window.ymin)
                )
                stack.extend(itertools.compress(node.children, hits))
            else:
                stack.extend(node.children)
    return result


def transitive_nn(tree: RTree, p: Point, r: Point) -> Tuple[Point, float]:
    """The point ``s`` in the tree minimising ``dis(p,s) + dis(s,r)``.

    Best-first on the MinTransDist lower bound (Definition 1) — the
    in-memory analogue of Hybrid-NN's Case 3 search.  Node expansion runs
    the Lemma 1 kernel over the whole child fan-out in one call.
    """
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [
        (min_trans_dist(p, tree.root.mbr, r), next(counter), tree.root)
    ]
    best: Optional[Point] = None
    best_dist = math.inf
    use_kernels = kernels.enabled()
    leaf_min = kernels.min_batch_leaf() if use_kernels else 0
    batch_min = kernels.min_batch() if use_kernels else 0
    while heap:
        dist, _, item = heapq.heappop(heap)
        if dist > best_dist:
            break
        if isinstance(item, Point):
            best, best_dist = item, dist
            break
        node = item
        if node.is_leaf:
            if use_kernels:
                if node.fanout >= leaf_min:
                    dists = kernels.trans_dists(p, node.points_array(), r).tolist()
                else:
                    dists = [distance(p, s) + distance(s, r) for s in node.points]
                _push_leaf_min(node, heap, counter, dists, node.points)
            else:
                for s in node.points:
                    heapq.heappush(
                        heap, (distance(p, s) + distance(s, r), next(counter), s)
                    )
        else:
            if use_kernels and node.fanout >= batch_min:
                bounds = kernels.min_trans_dist(
                    p, node.child_mbr_array(), r
                ).tolist()
                for child, b in zip(node.children, bounds):
                    heapq.heappush(heap, (b, next(counter), child))
            else:
                for child in node.children:
                    heapq.heappush(
                        heap, (min_trans_dist(p, child.mbr, r), next(counter), child)
                    )
    if best is None:
        raise ValueError("transitive NN search over an empty tree")
    return best, best_dist


def tnn_oracle(
    p: Point, s_tree: RTree, r_tree: RTree
) -> Tuple[Point, Point, float]:
    """Ground-truth TNN answer: the pair ``(s, r)`` minimising
    ``dis(p,s) + dis(s,r)``.

    Enumerates every ``s`` in ``s_tree`` (with an incremental lower-bound
    cutoff) and pairs it with its exact NN in ``r_tree``.  O(|S| log |R|)
    — fast enough to serve as the oracle in tests and the fail-rate table.
    """
    best_pair: Optional[Tuple[Point, Point]] = None
    best_dist = math.inf
    for s in s_tree.iter_points():
        d_ps = distance(p, s)
        if d_ps >= best_dist:
            continue
        r, d_sr = best_first_nn(r_tree, s)
        total = d_ps + d_sr
        if total < best_dist:
            best_dist = total
            best_pair = (s, r)
    if best_pair is None:
        raise ValueError("TNN oracle over empty datasets")
    return best_pair[0], best_pair[1], best_dist


def brute_force_tnn(
    p: Point, s_points: Iterable[Point], r_points: Iterable[Point]
) -> Tuple[Point, Point, float]:
    """Quadratic TNN join over raw point sets (small-instance ground truth)."""
    s_list = list(s_points)
    r_list = list(r_points)
    if not s_list or not r_list:
        raise ValueError("TNN requires non-empty datasets")
    best_pair = None
    best_dist = math.inf
    for s in s_list:
        d_ps = distance(p, s)
        if d_ps >= best_dist:
            continue
        for r in r_list:
            total = d_ps + distance(s, r)
            if total < best_dist:
                best_dist = total
                best_pair = (s, r)
    return best_pair[0], best_pair[1], best_dist
