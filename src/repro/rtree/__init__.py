"""Packed R-tree substrate.

The paper broadcasts STR-packed R-trees as its air index (Section 6:
"we use STR packing algorithm to build the R-tree in order to achieve the
best performance").  This package provides:

* :class:`RTreeNode` / :class:`RTree` — the index structure, one node per
  broadcast page;
* bulk loaders: :func:`str_pack` (Leutenegger et al., ICDE'97 — the paper's
  choice), :func:`hilbert_pack` (Kamel & Faloutsos, CIKM'93) and
  :func:`nearest_x_pack` (Roussopoulos & Leifker, SIGMOD'85) for ablations;
* in-memory reference query algorithms (best-first NN, range search,
  transitive NN) used as correctness oracles by the broadcast-side client.
"""

from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree
from repro.rtree.packing import build_rtree, hilbert_pack, nearest_x_pack, str_pack
from repro.rtree.hilbert import hilbert_index
from repro.rtree.traversal import (
    best_first_nn,
    best_first_knn,
    range_search,
    transitive_nn,
    tnn_oracle,
)

__all__ = [
    "RTree",
    "RTreeNode",
    "build_rtree",
    "str_pack",
    "hilbert_pack",
    "nearest_x_pack",
    "hilbert_index",
    "best_first_nn",
    "best_first_knn",
    "range_search",
    "transitive_nn",
    "tnn_oracle",
]
