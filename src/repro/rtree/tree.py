"""The packed R-tree container and structural validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.geometry import Point, Rect
from repro.rtree.node import RTreeNode


@dataclass
class RTree:
    """A bulk-loaded, read-only R-tree.

    ``height`` counts levels (a single-leaf tree has height 1) — the
    ``Rtree_height`` quantity of the paper's dynamic-alpha equation
    ``alpha = node_depth / Rtree_height * factor``.
    """

    root: RTreeNode
    leaf_capacity: int
    fanout: int
    size: int

    @property
    def height(self) -> int:
        return self.root.level + 1

    @property
    def mbr(self) -> Rect:
        return self.root.mbr

    def node_count(self) -> int:
        """Total number of nodes (== index pages when broadcast)."""
        return self.root.subtree_size()

    def leaf_count(self) -> int:
        return sum(1 for _ in self.root.iter_leaves())

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Depth-first preorder over all nodes — the broadcast order."""
        return self.root.iter_preorder()

    def iter_points(self) -> Iterator[Point]:
        """Every indexed point, in leaf (broadcast) order."""
        for leaf in self.root.iter_leaves():
            yield from leaf.points

    def depth_of(self, node: RTreeNode) -> int:
        """Levels below the root (root = 0, leaves = height - 1)."""
        return self.root.level - node.level

    def prepare_arrays(self, internal: bool = True, leaves: bool = True) -> None:
        """Materialise every node's array-backed fan-out view (pack time).

        Internal nodes cache their children's MBRs as one contiguous
        ``(n, 4)`` float64 array, leaves their points as ``(n, 2)`` — the
        structure-of-arrays inputs of :mod:`repro.geometry.kernels`,
        computed once and shared by all queries.
        """
        self.root.prepare_arrays(internal=internal, leaves=leaves)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`AssertionError`.

        * every child MBR is contained in its parent's MBR and parents are
          tight unions of their children;
        * leaf MBRs tightly bound their points;
        * node capacities are respected;
        * all leaves sit at level 0 (balance);
        * the number of indexed points equals ``size``.
        """
        seen_points: List[Point] = []
        for node in self.iter_nodes():
            if node.is_leaf:
                assert node.points, "empty leaf"
                assert len(node.points) <= self.leaf_capacity, "leaf overflow"
                assert node.mbr == Rect.from_points(node.points), "loose leaf MBR"
                seen_points.extend(node.points)
            else:
                assert node.children, "empty internal node"
                assert len(node.children) <= self.fanout, "internal overflow"
                assert node.mbr == Rect.union_of(
                    c.mbr for c in node.children
                ), "loose internal MBR"
                for child in node.children:
                    assert child.level == node.level - 1, "unbalanced tree"
                    assert node.mbr.contains_rect(child.mbr), "child escapes parent"
        assert len(seen_points) == self.size, (
            f"indexed {len(seen_points)} points, expected {self.size}"
        )

    def assign_page_ids(self) -> None:
        """Number nodes 0..n-1 in depth-first preorder (broadcast layout)."""
        for i, node in enumerate(self.iter_nodes()):
            node.page_id = i
            # Cached child-page views (frontier fan-out pushes) bind the
            # previous numbering; rebuilding the layout invalidates them.
            node._child_pages = None
            node._child_page_list = None
        # The node store's page column binds the numbering too (its
        # structural/geometry columns are layout-independent and stay).
        self._store_pages = None
