"""Hilbert space-filling curve, used by the Hilbert-sort R-tree packer."""

from __future__ import annotations


def hilbert_index(order: int, x: int, y: int) -> int:
    """Distance along the Hilbert curve of a ``2^order x 2^order`` grid.

    ``x`` and ``y`` must lie in ``[0, 2^order)``.  Implements the classic
    bit-twiddling xy->d conversion (Hamilton's / Wikipedia's formulation).
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"coordinates ({x}, {y}) outside {side}x{side} grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_key_for(order: int, fx: float, fy: float) -> int:
    """Hilbert index of a point with coordinates normalised to [0, 1].

    Values at the upper boundary are clamped into the grid.
    """
    side = 1 << order
    x = min(int(fx * side), side - 1)
    y = min(int(fy * side), side - 1)
    return hilbert_index(order, max(x, 0), max(y, 0))
