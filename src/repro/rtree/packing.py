"""Bulk-loading (packing) algorithms for static R-trees.

The broadcast setting knows all points a priori and performs no updates, so
the paper builds the air index with a packing algorithm.  Three classic
packers are provided:

* :func:`str_pack` — Sort-Tile-Recursive (Leutenegger, Lopez, Edgington,
  ICDE'97), the paper's choice "to achieve the best performance";
* :func:`hilbert_pack` — Hilbert-sort packing (Kamel & Faloutsos, CIKM'93);
* :func:`nearest_x_pack` — Nearest-X / lowest-X packing (Roussopoulos &
  Leifker, SIGMOD'85).

All three produce balanced trees whose leaves hold at most ``leaf_capacity``
points and whose internal nodes hold at most ``fanout`` children.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.geometry import Point, Rect
from repro.index.packed import prepare_packed_arrays
from repro.rtree.hilbert import hilbert_key_for
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree

#: Hilbert curve resolution used for sorting (2^16 x 2^16 grid).
_HILBERT_ORDER = 16


def _chunks(seq: Sequence, size: int) -> list[list]:
    """Split ``seq`` into consecutive runs of at most ``size`` items."""
    return [list(seq[i : i + size]) for i in range(0, len(seq), size)]


def _finalize(tree: RTree) -> RTree:
    """Pack-time epilogue: build every node's array-backed fan-out view.

    Delegates to the layout-agnostic packed-index finalisation
    (:func:`repro.index.packed.prepare_packed_arrays`) shared with the
    grid and quadtree air-index builders.
    """
    return prepare_packed_arrays(tree)


def _pack_upward(nodes: list[RTreeNode], fanout: int, group: Callable) -> RTreeNode:
    """Repeatedly group ``nodes`` into parents until a single root remains.

    ``group`` arranges one level's nodes into lists of at most ``fanout``
    spatially-close siblings.
    """
    while len(nodes) > 1:
        nodes = [RTreeNode.internal(g) for g in group(nodes, fanout)]
    return nodes[0]


def _str_group_nodes(nodes: list[RTreeNode], fanout: int) -> list[list[RTreeNode]]:
    """One STR tiling pass over a level of nodes, keyed by MBR centers."""
    n = len(nodes)
    leaf_pages = math.ceil(n / fanout)
    slices = math.ceil(math.sqrt(leaf_pages))
    by_x = sorted(nodes, key=lambda nd: (nd.mbr.center.x, nd.mbr.center.y))
    slabs = _chunks(by_x, slices * fanout)
    groups: list[list[RTreeNode]] = []
    for slab in slabs:
        by_y = sorted(slab, key=lambda nd: (nd.mbr.center.y, nd.mbr.center.x))
        groups.extend(_chunks(by_y, fanout))
    return groups


def str_pack(points: Sequence[Point], leaf_capacity: int, fanout: int) -> RTree:
    """Build an STR-packed R-tree.

    Points are sorted by x, tiled into vertical slabs, each slab sorted by y
    and cut into leaf pages; upper levels repeat the same tiling over node
    centers.
    """
    _validate(points, leaf_capacity, fanout)
    n = len(points)
    leaf_pages = math.ceil(n / leaf_capacity)
    slices = math.ceil(math.sqrt(leaf_pages))
    by_x = sorted(points, key=lambda p: (p.x, p.y))
    leaves: list[RTreeNode] = []
    for slab in _chunks(by_x, slices * leaf_capacity):
        by_y = sorted(slab, key=lambda p: (p.y, p.x))
        leaves.extend(RTreeNode.leaf(run) for run in _chunks(by_y, leaf_capacity))
    root = _pack_upward(leaves, fanout, _str_group_nodes)
    return _finalize(RTree(root=root, leaf_capacity=leaf_capacity, fanout=fanout, size=n))


def _linear_group_nodes(nodes: list[RTreeNode], fanout: int) -> list[list[RTreeNode]]:
    """Group a level by the existing order (used by linear-sort packers)."""
    return _chunks(nodes, fanout)


def hilbert_pack(points: Sequence[Point], leaf_capacity: int, fanout: int) -> RTree:
    """Build an R-tree by sorting points along the Hilbert curve."""
    _validate(points, leaf_capacity, fanout)
    region = Rect.from_points(points)
    w = region.width or 1.0
    h = region.height or 1.0

    def key(p: Point) -> int:
        return hilbert_key_for(
            _HILBERT_ORDER, (p.x - region.xmin) / w, (p.y - region.ymin) / h
        )

    ordered = sorted(points, key=key)
    leaves = [RTreeNode.leaf(run) for run in _chunks(ordered, leaf_capacity)]
    root = _pack_upward(leaves, fanout, _linear_group_nodes)
    return _finalize(RTree(root=root, leaf_capacity=leaf_capacity, fanout=fanout, size=len(points)))


def nearest_x_pack(points: Sequence[Point], leaf_capacity: int, fanout: int) -> RTree:
    """Build an R-tree by packing points in ascending x order (Nearest-X)."""
    _validate(points, leaf_capacity, fanout)
    ordered = sorted(points, key=lambda p: (p.x, p.y))
    leaves = [RTreeNode.leaf(run) for run in _chunks(ordered, leaf_capacity)]
    root = _pack_upward(leaves, fanout, _linear_group_nodes)
    return _finalize(RTree(root=root, leaf_capacity=leaf_capacity, fanout=fanout, size=len(points)))


_PACKERS: dict[str, Callable[[Sequence[Point], int, int], RTree]] = {
    "str": str_pack,
    "hilbert": hilbert_pack,
    "nearest_x": nearest_x_pack,
}


def build_rtree(
    points: Sequence[Point],
    leaf_capacity: int,
    fanout: int,
    method: str = "str",
) -> RTree:
    """Build a packed R-tree with the named packing ``method``.

    ``method`` is one of ``"str"`` (default, the paper's setting),
    ``"hilbert"`` or ``"nearest_x"``.
    """
    try:
        packer = _PACKERS[method]
    except KeyError:
        raise ValueError(
            f"unknown packing method {method!r}; choose from {sorted(_PACKERS)}"
        ) from None
    return packer(points, leaf_capacity, fanout)


def _validate(points: Sequence[Point], leaf_capacity: int, fanout: int) -> None:
    if not points:
        raise ValueError("cannot build an R-tree over an empty dataset")
    if leaf_capacity < 1:
        raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
    if fanout < 2:
        raise ValueError(f"fanout must be >= 2, got {fanout}")
