"""R-tree node structure.

One node corresponds to exactly one broadcast index page (Section 6 of the
paper).  Leaves store data points directly — in the air-index setting the
leaf page carries the point coordinates plus the arrival-time pointer of the
associated data object, so the client can evaluate distances without
touching the data segment.

Every node additionally caches an array-backed view of its fan-out for the
vectorised geometry kernels (:mod:`repro.geometry.kernels`): internal nodes
a contiguous ``(n, 4)`` float64 array of their children's MBRs (plus the
children's subtree point counts), leaves an ``(n, 2)`` array of their
points.  The arrays are built once — eagerly at pack time, lazily for
hand-assembled nodes — and shared by every query that expands the node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.index.packed import (
    pack_child_counts,
    pack_child_mbrs,
    pack_child_pages,
    pack_points,
)


@dataclass
class RTreeNode:
    """A node of a packed R-tree.

    Exactly one of ``children`` / ``points`` is non-empty: internal nodes
    hold child nodes, leaves hold data points.  ``level`` is 0 for leaves
    and grows toward the root.  ``page_id`` is assigned by the broadcast
    program builder when the tree is laid out on a channel.
    """

    mbr: Rect
    level: int
    children: list["RTreeNode"] = field(default_factory=list)
    points: list[Point] = field(default_factory=list)
    page_id: Optional[int] = None
    #: Number of data points in this node's subtree (used by the ANN
    #: pruning heuristic's containment-probability estimate).
    point_count: int = 0
    #: Cached ``(n, 4)`` float64 array of the children's MBRs (internal
    #: nodes) — the structure-of-arrays input of the vectorised kernels.
    _child_mbrs: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    #: Cached per-child subtree point counts, aligned with ``_child_mbrs``.
    _child_counts: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    #: Cached children's page ids — as an int64 array (columnar frontier
    #: arena) and as a plain list (the sorted-list frontier's splice).
    #: Built lazily after the broadcast layout assigns page ids;
    #: invalidated by :meth:`~repro.rtree.tree.RTree.assign_page_ids`.
    _child_pages: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _child_page_list: Optional[list] = field(
        default=None, repr=False, compare=False
    )
    #: Cached ``(n, 2)`` float64 array of the leaf's points.
    _points_arr: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    #: Cached "every child subtree holds a point" flag — the common case
    #: under STR packing, letting batch executors skip the per-child
    #: backed-guarantee mask entirely.
    _all_backed: Optional[bool] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def fanout(self) -> int:
        """Number of entries stored in this node."""
        return len(self.points) if self.is_leaf else len(self.children)

    @classmethod
    def leaf(cls, points: Sequence[Point]) -> "RTreeNode":
        """Build a leaf node with a tight MBR around ``points``."""
        if not points:
            raise ValueError("a leaf must hold at least one point")
        return cls(
            mbr=Rect.from_points(points),
            level=0,
            points=list(points),
            point_count=len(points),
        )

    @classmethod
    def internal(cls, children: Sequence["RTreeNode"]) -> "RTreeNode":
        """Build an internal node one level above its children."""
        if not children:
            raise ValueError("an internal node must have at least one child")
        levels = {c.level for c in children}
        if len(levels) != 1:
            raise ValueError(f"children must share one level, got {sorted(levels)}")
        return cls(
            mbr=Rect.union_of(c.mbr for c in children),
            level=children[0].level + 1,
            children=list(children),
            point_count=sum(c.point_count for c in children),
        )

    # ------------------------------------------------------------------
    # Array-backed fan-out views (inputs of the vectorised kernels)
    # ------------------------------------------------------------------
    def child_mbr_array(self) -> np.ndarray:
        """Contiguous ``(n, 4)`` float64 array of the children's MBRs."""
        arr = self._child_mbrs
        if arr is None:
            arr = pack_child_mbrs(self.children)
            self._child_mbrs = arr
        return arr

    def child_count_array(self) -> np.ndarray:
        """Per-child subtree point counts, aligned with the MBR rows."""
        arr = self._child_counts
        if arr is None:
            arr = pack_child_counts(self.children)
            self._child_counts = arr
        return arr

    def child_page_array(self) -> np.ndarray:
        """Contiguous int64 array of the children's page ids.

        Valid only after the broadcast layout assigned page ids (DFS
        preorder, so the array ascends).  Shared by every query that
        expands this node — the columnar frontier stages whole fan-outs
        from it without a per-child python loop.
        """
        arr = self._child_pages
        if arr is None:
            arr = pack_child_pages(self.children)
            self._child_pages = arr
        return arr

    def child_page_list(self) -> list:
        """The children's page ids as a cached plain list (ascending)."""
        lst = self._child_page_list
        if lst is None:
            lst = [c.page_id for c in self.children]
            self._child_page_list = lst
        return lst

    def children_all_backed(self) -> bool:
        """True when every child subtree holds at least one point.

        When it holds (always, for the standard packers), every child's
        MinMaxDist-style guarantee is backed and batch executors can take
        the plain row argmin instead of masking empty subtrees out.
        """
        v = self._all_backed
        if v is None:
            v = all(c.point_count > 0 for c in self.children)
            self._all_backed = v
        return v

    def points_array(self) -> np.ndarray:
        """Contiguous ``(n, 2)`` float64 array of this leaf's points."""
        arr = self._points_arr
        if arr is None:
            arr = pack_points(self.points)
            self._points_arr = arr
        return arr

    def prepare_arrays(self, internal: bool = True, leaves: bool = True) -> None:
        """Materialise the fan-out arrays for this whole subtree.

        Called once at pack time so the first query of every workload hits
        warm arrays instead of paying the packing cost itself.  The flags
        let the packer skip levels whose fan-outs can never reach the
        kernel dispatch thresholds.
        """
        for node in self.iter_preorder():
            if node.is_leaf:
                if leaves:
                    node.points_array()
            elif internal:
                node.child_mbr_array()
                node.child_count_array()

    def iter_preorder(self) -> Iterator["RTreeNode"]:
        """Depth-first preorder traversal — the broadcast layout order."""
        yield self
        for child in self.children:
            yield from child.iter_preorder()

    def iter_leaves(self) -> Iterator["RTreeNode"]:
        """All leaves under this node, in preorder."""
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.iter_leaves()

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return 1 + sum(c.subtree_size() for c in self.children)
