"""Brute-force TNN: download everything, join locally.

The baseline sketched in Section 3.1: retrieve all objects from both
channels and evaluate every pair.  Implemented as an estimate phase that
costs nothing and returns an infinite search radius, so the shared filter
phase degenerates to a full scan of both broadcast indexes.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.broadcast import ChannelTuner
from repro.client.policies import PruningPolicy
from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.geometry import Point


class BruteForceTNN(TNNAlgorithm):
    """Retrieve both datasets entirely and join (correct but wasteful)."""

    name = "brute-force"

    def _estimate(
        self,
        env: TNNEnvironment,
        query: Point,
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        policy_s: PruningPolicy,
        policy_r: PruningPolicy,
    ) -> Tuple[float, Optional[Tuple[Point, Point]]]:
        return math.inf, None
