"""Approximate-TNN-Search (Zheng, Lee and Lee), adapted to two channels.

No estimate traversal at all: the search radius comes from Equation 1,

    ``r_k(S) = ln(n) * sqrt(k / (pi * n))``  (unit square, n = |S|),

scaled to the datasets' region, with ``d = r_1(S) + r_1(R)``.  The filter
phase starts immediately on both channels — hence the best access time of
all algorithms — but the radius is only valid for uniformly distributed
data: on skewed datasets the circle may miss the true answer pair entirely
(the fail rates of Table 3), and even on uniform data it is unnecessarily
large, inflating tune-in time (Figure 11(d)).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.broadcast import ChannelTuner
from repro.client.policies import PruningPolicy
from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.geometry import Point


def uniform_knn_radius(n: int, area: float, k: int = 1) -> float:
    """Equation 1, scaled from the unit square to a region of ``area``.

    For uniformly distributed points, a circle of this radius is expected
    to enclose at least ``k`` of the ``n`` points.
    """
    if n <= 0:
        raise ValueError(f"dataset size must be positive, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if area <= 0:
        raise ValueError(f"area must be positive, got {area}")
    return math.log(n) * math.sqrt(k / (math.pi * n)) * math.sqrt(area)


class ApproximateTNN(TNNAlgorithm):
    """Closed-form search radius; zero-cost estimate phase; may fail."""

    name = "approximate-tnn"

    def _estimate(
        self,
        env: TNNEnvironment,
        query: Point,
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        policy_s: PruningPolicy,
        policy_r: PruningPolicy,
    ) -> Tuple[float, Optional[Tuple[Point, Point]]]:
        area = env.region.area
        radius = uniform_knn_radius(len(env.s_points), area) + uniform_knn_radius(
            len(env.r_points), area
        )
        return radius, None
