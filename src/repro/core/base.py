"""Shared machinery for TNN algorithms: the estimate-filter skeleton."""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

from repro.broadcast import ChannelTuner
from repro.client import BroadcastRangeSearch, run_all
from repro.client.policies import ExactPolicy, PruningPolicy
from repro.core.ann import AnnOptimization
from repro.core.environment import TNNEnvironment
from repro.core.join import transitive_join
from repro.core.result import TNNResult
from repro.geometry import Circle, Point


class TNNAlgorithm(abc.ABC):
    """Base class of all TNN query processors.

    Subclasses implement :meth:`_estimate`, returning the search radius
    (and, for exact algorithms, the seed pair that produced it); the shared
    filter phase then runs two parallel range queries and the transitive
    join, and assembles the :class:`TNNResult` with the paper's metrics.

    ``optimization`` plugs the ANN approximation into the estimate phase;
    ``include_data_retrieval`` additionally downloads the answer pair's
    data pages at the end (constant across algorithms, hence off by
    default — the paper measures query processing pages).
    """

    name: str = "tnn"

    def __init__(
        self,
        optimization: Optional[AnnOptimization] = None,
        include_data_retrieval: bool = False,
    ) -> None:
        self.optimization = optimization
        self.include_data_retrieval = include_data_retrieval

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(
        self,
        env: TNNEnvironment,
        query: Point,
        phase_s: float = 0.0,
        phase_r: float = 0.0,
    ) -> TNNResult:
        """Answer one TNN query issued at t=0 with the given channel phases."""
        tuner_s, tuner_r = env.tuners(phase_s, phase_r)
        policy_s, policy_r = self._policies(env)

        radius, seed_pair = self._estimate(
            env, query, tuner_s, tuner_r, policy_s, policy_r
        )
        estimate_finish = max(tuner_s.now, tuner_r.now)
        estimate_pages = tuner_s.pages_downloaded + tuner_r.pages_downloaded

        s, r, dist = self._filter(
            env, query, radius, seed_pair, tuner_s, tuner_r, estimate_finish
        )
        filter_pages = (
            tuner_s.pages_downloaded + tuner_r.pages_downloaded - estimate_pages
        )

        data_pages = 0
        if self.include_data_retrieval and s is not None and r is not None:
            before = tuner_s.data_pages + tuner_r.data_pages
            finish = max(tuner_s.now, tuner_r.now)
            tuner_s.advance_to(finish)
            tuner_r.advance_to(finish)
            tuner_s.download_object(env.s_object_of(s))
            tuner_r.download_object(env.r_object_of(r))
            data_pages = tuner_s.data_pages + tuner_r.data_pages - before

        return TNNResult(
            algorithm=self.name,
            query=query,
            s=s,
            r=r,
            distance=dist,
            radius=radius,
            access_time=max(tuner_s.now, tuner_r.now),
            tune_in_s=tuner_s.pages_downloaded,
            tune_in_r=tuner_r.pages_downloaded,
            estimate_pages=estimate_pages,
            filter_pages=filter_pages,
            estimate_finish=estimate_finish,
            data_pages=data_pages,
            failed=s is None or r is None,
        )

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _policies(
        self, env: TNNEnvironment
    ) -> Tuple[PruningPolicy, PruningPolicy]:
        if self.optimization is None:
            return ExactPolicy(), ExactPolicy()
        return self.optimization.policies(env)

    @abc.abstractmethod
    def _estimate(
        self,
        env: TNNEnvironment,
        query: Point,
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        policy_s: PruningPolicy,
        policy_r: PruningPolicy,
    ) -> Tuple[float, Optional[Tuple[Point, Point]]]:
        """Phase 1: return ``(search_radius, seed_pair_or_None)``."""

    # ------------------------------------------------------------------
    # Shared filter phase
    # ------------------------------------------------------------------
    def _filter(
        self,
        env: TNNEnvironment,
        query: Point,
        radius: float,
        seed_pair: Optional[Tuple[Point, Point]],
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        start_time: float,
    ) -> Tuple[Optional[Point], Optional[Point], float]:
        """Phase 2: parallel range queries on both channels, then the join."""
        circle = Circle(query, radius)
        range_s = BroadcastRangeSearch(env.s_tree, tuner_s, circle, start_time)
        range_r = BroadcastRangeSearch(env.r_tree, tuner_r, circle, start_time)
        run_all([range_s, range_r])

        seed_bound = math.inf
        if seed_pair is not None:
            s0, r0 = seed_pair
            seed_bound = query.distance_to(s0) + s0.distance_to(r0)
        return transitive_join(
            query,
            range_s.results,
            range_r.results,
            initial_bound=seed_bound,
            initial_pair=seed_pair,
        )
