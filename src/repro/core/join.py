"""The filter-phase transitive join (Algorithm 1, lines 7-17).

Given the candidate sets retrieved by the two range queries, find the pair
``(s, r)`` minimising ``dis(p,s) + dis(s,r)``.  The loop structure follows
the paper — skip any ``s`` whose first hop alone already exceeds the best
transitive distance — but the inner distance evaluation is vectorised so
that even the oversized candidate sets produced by Approximate-TNN join in
reasonable time.  Distances run on the exact-hypot kernel
(:func:`repro.geometry.kernels.hypot`), so every total the join reports is
bit-identical to a scalar ``dis(p,s) + dis(s,r)`` recomputation — the same
guarantee the tree-side kernels give.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, distance
from repro.geometry import kernels

#: Row-block size for pairwise distance evaluation (bounds peak memory).
_BLOCK = 512

#: Certified margins for the raw-``np.hypot`` candidate gate, the same
#: idiom the search kernels use: raw pairwise totals sit within a few ulp
#: of the exact values, so any pair whose exact total could reach the
#: block minimum (or the running bound) survives a 1e-9 relative band and
#: is re-evaluated exactly — far fewer exact hypots than the full matrix.
_GATE_DEFLATE = 1.0 - 1e-9
_GATE_INFLATE = 1.0 + 1e-9

#: Pair-count ceiling below which the all-scalar join wins: TNN candidate
#: sets are usually a handful of points each, where fifteen vectorised
#: array passes cost more than the whole ``math.hypot`` double loop.
_SCALAR_CELLS = 256


def _join_scalar(
    p: Point,
    s_candidates: Sequence[Point],
    r_candidates: Sequence[Point],
    best_s: Optional[Point],
    best_r: Optional[Point],
    best_d: float,
) -> Tuple[Optional[Point], Optional[Point], float]:
    """All-``math.hypot`` join for small candidate sets.

    Replays the canonical scan the blocked path is equivalent to — s in
    ``np.argsort`` first-hop order (the *same* permutation, since the
    exact-hypot kernel is ``math.hypot`` bit for bit), r in index order,
    strict first-improvement updates — so the selected pair and distance
    are bit-identical to the vectorised evaluation.
    """
    hyp = math.hypot
    px, py = p.x, p.y
    d_ps = np.array([hyp(px - s.x, py - s.y) for s in s_candidates])
    for i in np.argsort(d_ps).tolist():
        d_p = float(d_ps[i])
        if d_p >= best_d:
            break  # sorted: every later s is at least as far
        s = s_candidates[i]
        sx, sy = s.x, s.y
        for r in r_candidates:
            total = d_p + hyp(sx - r.x, sy - r.y)
            if total < best_d:
                best_d = total
                best_s = s
                best_r = r
    return best_s, best_r, best_d


def transitive_join(
    p: Point,
    s_candidates: Sequence[Point],
    r_candidates: Sequence[Point],
    initial_bound: float = math.inf,
    initial_pair: Optional[Tuple[Point, Point]] = None,
) -> Tuple[Optional[Point], Optional[Point], float]:
    """Minimum-transitive-distance pair over the candidate sets.

    ``initial_pair`` (with its distance ``initial_bound``) seeds the best
    answer — the estimate phase's pair is itself a valid result, so exact
    algorithms can never come back empty-handed.  Without a seed pair the
    join returns ``(None, None, inf)`` when the candidate sets are empty,
    which is how Approximate-TNN failures surface.
    """
    best_s, best_r = initial_pair if initial_pair is not None else (None, None)
    best_d = initial_bound if initial_pair is not None else math.inf

    if not s_candidates or not r_candidates:
        return best_s, best_r, best_d

    if len(s_candidates) * len(r_candidates) <= _SCALAR_CELLS:
        return _join_scalar(p, s_candidates, r_candidates, best_s, best_r, best_d)

    s_arr = np.asarray(s_candidates, dtype=float)
    r_arr = np.asarray(r_candidates, dtype=float)

    d_ps = kernels.hypot(p.x - s_arr[:, 0], p.y - s_arr[:, 1])
    order = np.argsort(d_ps)

    for start in range(0, len(order), _BLOCK):
        idx = order[start : start + _BLOCK]
        # Per-candidate skip (Algorithm 1, line 9): any s whose first hop
        # alone reaches the bound is dead.  Within a block the first-hop
        # distances are sorted, so the live rows are a prefix; and once the
        # prefix is empty no later s can improve the answer.
        live = int(np.searchsorted(d_ps[idx], best_d, side="left"))
        if live == 0:
            break
        idx = idx[:live]
        block = s_arr[idx]
        dx = block[:, 0:1] - r_arr[None, :, 0]
        dy = block[:, 1:2] - r_arr[None, :, 1]
        raw = d_ps[idx][:, None] + np.hypot(dx, dy)
        m = float(raw.min())
        if m * _GATE_DEFLATE > best_d:
            # Even the raw block minimum provably cannot beat the bound.
            continue
        # Exact re-evaluation of the gated candidates, scanned in the
        # matrix's row-major order.  Strict improvement keeps the first
        # entry attaining the exact minimum — the same pair the exact
        # full-matrix argmin selects — and ``math.hypot`` here is the very
        # scalar the exact-hypot kernel reproduces, so every stored total
        # stays bit-identical to the all-exact evaluation.
        for i, j in np.argwhere(raw <= min(m, best_d) * _GATE_INFLATE):
            total = d_ps[idx[i]] + math.hypot(dx[i, j], dy[i, j])
            if total < best_d:
                best_d = float(total)
                best_s = Point(float(block[i, 0]), float(block[i, 1]))
                best_r = Point(float(r_arr[j, 0]), float(r_arr[j, 1]))

    return best_s, best_r, best_d


def verify_pair(p: Point, s: Point, r: Point, expected: float) -> bool:
    """Sanity check: the reported distance matches the reported pair."""
    return math.isclose(
        distance(p, s) + distance(s, r), expected, rel_tol=1e-9, abs_tol=1e-9
    )
