"""The filter-phase transitive join (Algorithm 1, lines 7-17).

Given the candidate sets retrieved by the two range queries, find the pair
``(s, r)`` minimising ``dis(p,s) + dis(s,r)``.  The loop structure follows
the paper — skip any ``s`` whose first hop alone already exceeds the best
transitive distance — but the inner distance evaluation is vectorised so
that even the oversized candidate sets produced by Approximate-TNN join in
reasonable time.  Distances run on the exact-hypot kernel
(:func:`repro.geometry.kernels.hypot`), so every total the join reports is
bit-identical to a scalar ``dis(p,s) + dis(s,r)`` recomputation — the same
guarantee the tree-side kernels give.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, distance
from repro.geometry import kernels

#: Row-block size for pairwise distance evaluation (bounds peak memory).
_BLOCK = 512


def transitive_join(
    p: Point,
    s_candidates: Sequence[Point],
    r_candidates: Sequence[Point],
    initial_bound: float = math.inf,
    initial_pair: Optional[Tuple[Point, Point]] = None,
) -> Tuple[Optional[Point], Optional[Point], float]:
    """Minimum-transitive-distance pair over the candidate sets.

    ``initial_pair`` (with its distance ``initial_bound``) seeds the best
    answer — the estimate phase's pair is itself a valid result, so exact
    algorithms can never come back empty-handed.  Without a seed pair the
    join returns ``(None, None, inf)`` when the candidate sets are empty,
    which is how Approximate-TNN failures surface.
    """
    best_s, best_r = initial_pair if initial_pair is not None else (None, None)
    best_d = initial_bound if initial_pair is not None else math.inf

    if not s_candidates or not r_candidates:
        return best_s, best_r, best_d

    s_arr = np.asarray(s_candidates, dtype=float)
    r_arr = np.asarray(r_candidates, dtype=float)

    d_ps = kernels.hypot(p.x - s_arr[:, 0], p.y - s_arr[:, 1])
    order = np.argsort(d_ps)

    for start in range(0, len(order), _BLOCK):
        idx = order[start : start + _BLOCK]
        # Per-candidate skip (Algorithm 1, line 9): any s whose first hop
        # alone reaches the bound is dead.  Within a block the first-hop
        # distances are sorted, so the live rows are a prefix; and once the
        # prefix is empty no later s can improve the answer.
        live = int(np.searchsorted(d_ps[idx], best_d, side="left"))
        if live == 0:
            break
        idx = idx[:live]
        block = s_arr[idx]
        dx = block[:, 0:1] - r_arr[None, :, 0]
        dy = block[:, 1:2] - r_arr[None, :, 1]
        totals = d_ps[idx][:, None] + kernels.hypot(dx, dy)
        flat = int(np.argmin(totals))
        i, j = divmod(flat, len(r_arr))
        if totals[i, j] < best_d:
            best_d = float(totals[i, j])
            best_s = Point(float(block[i, 0]), float(block[i, 1]))
            best_r = Point(float(r_arr[j, 0]), float(r_arr[j, 1]))

    return best_s, best_r, best_d


def verify_pair(p: Point, s: Point, r: Point, expected: float) -> bool:
    """Sanity check: the reported distance matches the reported pair."""
    return math.isclose(
        distance(p, s) + distance(s, r), expected, rel_tol=1e-9, abs_tol=1e-9
    )
