"""The outcome of one TNN query, with the paper's two cost metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry import Point


@dataclass
class TNNResult:
    """Answer and cost accounting for a single TNN query.

    * ``access_time`` — pages elapsed from query issue (t=0) to completion;
      the larger of the two channels' finish times (Section 6).
    * ``tune_in_time`` — total pages downloaded on both channels; the
      paper's energy proxy.
    * ``failed`` — only Approximate-TNN can fail: its estimated circle may
      contain no (or only suboptimal) pairs on skewed data (Section 6.3).
      Exact correctness versus the oracle is asserted separately in tests.
    """

    algorithm: str
    query: Point
    s: Optional[Point]
    r: Optional[Point]
    distance: float
    radius: float
    access_time: float
    tune_in_s: int
    tune_in_r: int
    estimate_pages: int
    filter_pages: int
    estimate_finish: float
    data_pages: int = 0
    failed: bool = False

    @property
    def tune_in_time(self) -> int:
        """Total tune-in over both channels, in pages."""
        return self.tune_in_s + self.tune_in_r

    @property
    def pair(self) -> tuple[Optional[Point], Optional[Point]]:
        return (self.s, self.r)
