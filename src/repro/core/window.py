"""Window-Based-TNN-Search (Zheng, Lee and Lee), adapted to two channels.

Estimate phase (inherently sequential — its second NN query is rooted at
the result of the first):

1. ``s = p.NN(S)`` on channel 1;
2. ``r = s.NN(R)`` on channel 2, starting only after step 1 finished;
3. search radius ``d = dis(p,s) + dis(s,r)``.

The adaptation to the multi-channel device is in the *filter* phase, which
the shared base class already runs on both channels in parallel.  The
sequential estimate phase is exactly the deficiency (Section 3.2) that
Double-NN and Hybrid-NN remove.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.broadcast import ChannelTuner
from repro.client import BroadcastNNSearch
from repro.client.policies import PruningPolicy
from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.geometry import Point


class WindowBasedTNN(TNNAlgorithm):
    """Sequential two-NN estimate; parallel filter."""

    name = "window-based"

    def _estimate(
        self,
        env: TNNEnvironment,
        query: Point,
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        policy_s: PruningPolicy,
        policy_r: PruningPolicy,
    ) -> Tuple[float, Optional[Tuple[Point, Point]]]:
        first = BroadcastNNSearch(env.s_tree, tuner_s, query, policy_s)
        first.run_to_completion()
        s, _ = first.result()

        second = BroadcastNNSearch(
            env.r_tree, tuner_r, s, policy_r, start_time=tuner_s.now
        )
        second.run_to_completion()
        r, _ = second.result()

        radius = query.distance_to(s) + s.distance_to(r)
        return radius, (s, r)
