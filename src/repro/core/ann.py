"""ANN optimisation plumbing (Section 5 of the paper).

``AnnOptimization`` decides, per channel, which pruning policy the estimate
phase uses:

* both channels get the dynamic alpha of Equation 4 scaled by ``factor``
  (1 for Double-NN / Window-Based-TNN, 1/150 or 1/200 for Hybrid-NN);
* with ``density_aware=True`` (Section 6.2.2) the **sparser** dataset is
  searched exactly (alpha = 0) — approximating it would inflate the search
  range and the penalty on the denser dataset's range query would
  countervail the savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.client.policies import AnnPolicy, ExactPolicy, PruningPolicy, dynamic_alpha

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.environment import TNNEnvironment


@dataclass(frozen=True)
class AnnOptimization:
    """Configuration of the ANN estimate-phase optimisation."""

    factor: float = 1.0
    density_aware: bool = True

    def policies(self, env: "TNNEnvironment") -> Tuple[PruningPolicy, PruningPolicy]:
        """Pruning policies for (channel 1 / S, channel 2 / R)."""
        ann = AnnPolicy(dynamic_alpha(self.factor))
        if not self.density_aware:
            return ann, ann
        n_s, n_r = len(env.s_points), len(env.r_points)
        if n_s == n_r:
            return ann, ann
        # Both datasets cover the same region, so cardinality orders density.
        if n_s < n_r:
            return ExactPolicy(), ann
        return ann, ExactPolicy()
