"""Hybrid-NN-Search (Section 4.2) — the paper's second new algorithm.

Starts exactly like Double-NN: two parallel NN searches from ``p``.  The
moment one channel's search completes, its result re-steers the other so
the eventual pair gives a *smaller* search radius:

* **Case 1** — neither finished yet: behave like Double-NN.
* **Case 2** — channel 1 (dataset S) finishes first with ``s = p.NN(S)``:
  the channel-2 search swaps its query point from ``p`` to ``s`` and finds
  the nearest ``r`` to ``s`` over the remaining portion of R's tree —
  mimicking Window-Based-TNN's tighter radius without its serialisation.
* **Case 3** — channel 2 (dataset R) finishes first with ``r = p.NN(R)``:
  the channel-1 search switches metrics to transitive distance, pruning
  with MinTransDist and tightening with MinMaxTransDist (Algorithm 2), and
  returns the ``s`` minimising ``dis(p,s) + dis(s,r)`` over the remaining
  portion of S's tree.

Both re-steerings are sound because children are pushed un-pruned and all
pruning happens at pop time (the delayed-pruning adjustment of Section
4.2.4) — no subtree the *new* query needs was ever discarded.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.broadcast import ChannelTuner
from repro.client import BroadcastNNSearch, run_all
from repro.client.policies import PruningPolicy
from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.geometry import Point


class HybridNN(TNNAlgorithm):
    """Parallel estimate with mid-flight re-steering (Cases 1-3)."""

    name = "hybrid-nn"

    def _estimate(
        self,
        env: TNNEnvironment,
        query: Point,
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        policy_s: PruningPolicy,
        policy_r: PruningPolicy,
    ) -> Tuple[float, Optional[Tuple[Point, Point]]]:
        nn_s = BroadcastNNSearch(env.s_tree, tuner_s, query, policy_s)
        nn_r = BroadcastNNSearch(env.r_tree, tuner_r, query, policy_r)
        steered = False

        def coordinator(finished_search) -> None:
            # Fires exactly when one channel's search completes — the only
            # moment a re-steer can trigger (a search finishes only by its
            # own step, so polling every step would be equivalent, just
            # slower).
            nonlocal steered
            if steered:
                return
            if finished_search is nn_s and not nn_r.finished():
                s, _ = nn_s.result()
                nn_r.retarget(s)  # Case 2
                steered = True
            elif finished_search is nn_r and not nn_s.finished():
                r, _ = nn_r.result()
                nn_s.switch_to_transitive(query, r)  # Case 3
                steered = True

        run_all([nn_s, nn_r], on_finish=coordinator)
        s, _ = nn_s.result()
        r, _ = nn_r.result()
        radius = query.distance_to(s) + s.distance_to(r)
        return radius, (s, r)
