"""Double-NN-Search (Algorithm 1) — the paper's first new algorithm.

Both nearest-neighbor queries run from the query point ``p`` **in
parallel**, one per channel, starting the moment each channel's index root
flies by:

    ``s = p.NN(S)``  (channel 1)   ||   ``r = p.NN(R)``  (channel 2)

The search radius is ``d = dis(p,s) + dis(s,r)`` — note the second hop is
measured from ``s`` to ``r`` even though ``r`` was found from ``p``; the
pair (s, r) is a genuine candidate pair, so Theorem 1 guarantees the circle
contains the answer.  The parallel estimate removes Window-Based-TNN's
serialisation and cuts access time by 7-15% when the datasets have similar
sizes (Section 6.1.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.broadcast import ChannelTuner
from repro.client import BroadcastNNSearch, run_all
from repro.client.policies import PruningPolicy
from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.geometry import Point


class DoubleNN(TNNAlgorithm):
    """Fully parallel estimate phase with two independent NN searches."""

    name = "double-nn"

    def _estimate(
        self,
        env: TNNEnvironment,
        query: Point,
        tuner_s: ChannelTuner,
        tuner_r: ChannelTuner,
        policy_s: PruningPolicy,
        policy_r: PruningPolicy,
    ) -> Tuple[float, Optional[Tuple[Point, Point]]]:
        nn_s = BroadcastNNSearch(env.s_tree, tuner_s, query, policy_s)
        nn_r = BroadcastNNSearch(env.r_tree, tuner_r, query, policy_r)
        run_all([nn_s, nn_r])
        s, _ = nn_s.result()
        r, _ = nn_r.result()
        radius = query.distance_to(s) + s.distance_to(r)
        return radius, (s, r)
