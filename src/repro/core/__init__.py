"""TNN query processing over multi-channel broadcast — the paper's core.

Five algorithms answer ``p.TNN(S, R)`` where channel 1 broadcasts dataset S
and channel 2 broadcasts dataset R, both simultaneously accessible:

* :class:`BruteForceTNN` — download everything, join locally (baseline);
* :class:`WindowBasedTNN` — Zheng/Lee/Lee's sequential two-NN estimate,
  adapted to run its filter phase on both channels in parallel;
* :class:`ApproximateTNN` — the closed-form search radius of Equation 1
  (no estimate traversal; may fail on skewed data);
* :class:`DoubleNN` — the paper's first new algorithm: both NN queries run
  from ``p`` in parallel (Algorithm 1);
* :class:`HybridNN` — the paper's second new algorithm: the first channel
  to finish re-steers the other (Cases 1-3, Algorithm 2).

The ANN optimisation of Section 5 plugs into any estimate phase through
:class:`AnnOptimization`.
"""

from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.core.join import transitive_join
from repro.core.base import TNNAlgorithm
from repro.core.ann import AnnOptimization
from repro.core.brute import BruteForceTNN
from repro.core.window import WindowBasedTNN
from repro.core.approximate import ApproximateTNN, uniform_knn_radius
from repro.core.double import DoubleNN
from repro.core.hybrid import HybridNN

__all__ = [
    "TNNEnvironment",
    "TNNResult",
    "TNNAlgorithm",
    "AnnOptimization",
    "transitive_join",
    "BruteForceTNN",
    "WindowBasedTNN",
    "ApproximateTNN",
    "DoubleNN",
    "HybridNN",
    "uniform_knn_radius",
]
