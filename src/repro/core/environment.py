"""The two-channel TNN environment: datasets, air indexes and channels."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.geometry import Point, Rect
from repro.rtree import RTree, build_rtree


@dataclass
class TNNEnvironment:
    """Everything a TNN query needs: two indexed datasets on two channels.

    Channel 1 broadcasts dataset **S** (the first hop of the transitive
    route), channel 2 broadcasts dataset **R** (the second hop).  Build one
    environment per dataset pair and reuse it across queries — each query
    draws fresh channel phases via :meth:`tuners`.
    """

    s_points: List[Point]
    r_points: List[Point]
    s_tree: RTree
    r_tree: RTree
    s_program: BroadcastProgram
    r_program: BroadcastProgram
    params: SystemParameters
    region: Rect
    _s_object_index: Dict[Point, int] = field(repr=False, default_factory=dict)
    _r_object_index: Dict[Point, int] = field(repr=False, default_factory=dict)

    @classmethod
    def build(
        cls,
        s_points: Sequence[Point],
        r_points: Sequence[Point],
        params: SystemParameters | None = None,
        m: int | None = None,
        packing: str = "str",
        distributed_levels: int | None = None,
    ) -> "TNNEnvironment":
        """Index both datasets and lay them out as broadcast programs.

        Page geometry (leaf capacity, fanout) derives from ``params``
        (Table 2); the replication factor ``m`` defaults to the
        access-time-optimal value per channel.  ``distributed_levels``
        switches both channels from full (1, m) replication to distributed
        indexing that replicates only that many top tree levels.
        """
        params = params or SystemParameters()
        s_tree = build_rtree(
            list(s_points), params.leaf_capacity, params.internal_fanout, packing
        )
        r_tree = build_rtree(
            list(r_points), params.leaf_capacity, params.internal_fanout, packing
        )
        if distributed_levels is None:
            s_program = BroadcastProgram(s_tree, params, m=m)
            r_program = BroadcastProgram(r_tree, params, m=m)
        else:
            from repro.broadcast.distributed import DistributedBroadcastProgram

            s_program = DistributedBroadcastProgram(
                s_tree, params, m=m, replicated_levels=distributed_levels
            )
            r_program = DistributedBroadcastProgram(
                r_tree, params, m=m, replicated_levels=distributed_levels
            )
        region = Rect.union_of([s_tree.mbr, r_tree.mbr])
        env = cls(
            s_points=list(s_points),
            r_points=list(r_points),
            s_tree=s_tree,
            r_tree=r_tree,
            s_program=s_program,
            r_program=r_program,
            params=params,
            region=region,
        )
        env._s_object_index = {
            p: i for i, p in enumerate(s_tree.iter_points())
        }
        env._r_object_index = {
            p: i for i, p in enumerate(r_tree.iter_points())
        }
        return env

    # ------------------------------------------------------------------
    # Per-query channel state
    # ------------------------------------------------------------------
    def tuners(
        self, phase_s: float = 0.0, phase_r: float = 0.0
    ) -> Tuple[ChannelTuner, ChannelTuner]:
        """Fresh tuners for one query, with the given channel phases."""
        return (
            ChannelTuner(BroadcastChannel(self.s_program, phase=phase_s)),
            ChannelTuner(BroadcastChannel(self.r_program, phase=phase_r)),
        )

    def random_phases(self, rng: random.Random) -> Tuple[float, float]:
        """Random phases, one per channel — the paper's random waiting time
        for the two roots."""
        return (
            rng.uniform(0, self.s_program.cycle_length),
            rng.uniform(0, self.r_program.cycle_length),
        )

    def random_query_point(self, rng: random.Random) -> Point:
        """A query point uniform over the datasets' common region."""
        return Point(
            rng.uniform(self.region.xmin, self.region.xmax),
            rng.uniform(self.region.ymin, self.region.ymax),
        )

    # ------------------------------------------------------------------
    # Data-object lookup (for final attribute retrieval)
    # ------------------------------------------------------------------
    def s_object_of(self, point: Point) -> int:
        """Broadcast object index of an S point (leaf order)."""
        return self._s_object_index[point]

    def r_object_of(self, point: Point) -> int:
        """Broadcast object index of an R point (leaf order)."""
        return self._r_object_index[point]
