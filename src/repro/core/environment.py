"""The two-channel TNN environment: datasets, air indexes and channels."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, MutableMapping, Optional, Sequence, Tuple

from repro.broadcast import (
    BroadcastChannel,
    BroadcastLayout,
    BroadcastProgram,
    ChannelTuner,
    FaultModel,
    RTreeInterleavedLayout,
    SystemParameters,
)
from repro.geometry import Point, Rect
from repro.rtree import RTree


@dataclass
class TNNEnvironment:
    """Everything a TNN query needs: two indexed datasets on two channels.

    Channel 1 broadcasts dataset **S** (the first hop of the transitive
    route), channel 2 broadcasts dataset **R** (the second hop).  Build one
    environment per dataset pair and reuse it across queries — each query
    draws fresh channel phases via :meth:`tuners`.
    """

    s_points: List[Point]
    r_points: List[Point]
    s_tree: RTree
    r_tree: RTree
    s_program: BroadcastProgram
    r_program: BroadcastProgram
    params: SystemParameters
    region: Rect
    #: Optional channel fault model shared by every tuner the environment
    #: hands out — the paper's lossless channel when ``None``.  Any
    #: :class:`~repro.broadcast.loss.FaultModel` plugs in (i.i.d. loss,
    #: Gilbert–Elliott bursts, detected corruption, or anything
    #: registered via ``register_fault_model``); faulty tuners retry
    #: receptions at the failed page's next replica.  NN searches stay on
    #: the shared-scan arena/ledger fast path regardless — the round
    #: flush replays the retry chains closed form, bit-identically —
    #: while the drain serves (kNN / range / window) fall back to the
    #: per-query oracle (see ``SharedScanExecutor._fast``).
    loss: Optional[FaultModel] = None
    _s_object_index: Dict[Point, int] = field(repr=False, default_factory=dict)
    _r_object_index: Dict[Point, int] = field(repr=False, default_factory=dict)

    @classmethod
    def build(
        cls,
        s_points: Sequence[Point],
        r_points: Sequence[Point],
        params: SystemParameters | None = None,
        m: int | None = None,
        packing: str = "str",
        distributed_levels: int | None = None,
        layout: "BroadcastLayout | None" = None,
        tree_cache: Optional[MutableMapping] = None,
        program_cache: Optional[MutableMapping] = None,
        loss: Optional[FaultModel] = None,
    ) -> "TNNEnvironment":
        """Index both datasets and lay them out as broadcast programs.

        Page geometry (leaf capacity, fanout) derives from ``params``
        (Table 2); the replication factor ``m`` defaults to the
        access-time-optimal value per channel.  Schedule generation is
        delegated to a :class:`~repro.broadcast.layout.BroadcastLayout`
        backend; ``packing`` and ``distributed_levels`` are the legacy
        spelling of the default R-tree backend and may not be combined
        with an explicit ``layout``.

        ``tree_cache`` / ``program_cache`` enable shared-cycle reuse across
        environments: a packed tree is keyed by (dataset, page geometry)
        plus the layout's ``index_key()``, and a broadcast program by the
        tree key plus (params, m) and the layout's full ``cache_key()`` —
        backend type *and* every schedule parameter — so sweep
        configurations that differ only in ``m``, in the page capacity, or
        in the *other* channel's dataset rebuild nothing they already
        have, while two backends over the same dataset never alias.
        Index builds are deterministic, so a cache hit is observationally
        identical to a rebuild.
        """
        params = params or SystemParameters()
        if layout is None:
            layout = RTreeInterleavedLayout(
                packing=packing, distributed_levels=distributed_levels
            )
        elif packing != "str" or distributed_levels is not None:
            raise ValueError(
                "pass either layout= or the legacy packing/distributed_levels "
                "arguments, not both"
            )

        def tree_for(points: List[Point]):
            if tree_cache is None:
                return layout.build_index(points, params), None
            key = (
                tuple(points),
                params.leaf_capacity,
                params.internal_fanout,
                layout.index_key(),
            )
            tree = tree_cache.get(key)
            if tree is None:
                tree = layout.build_index(points, params)
                tree_cache[key] = tree
            return tree, key

        def program_for(tree, tree_key):
            key = None
            if program_cache is not None and tree_key is not None:
                key = (tree_key, params, m, layout.cache_key())
                program = program_cache.get(key)
                if program is not None:
                    return program
            program = layout.build_program(tree, params, m=m)
            if key is not None:
                program_cache[key] = program
            return program

        s_tree, s_key = tree_for(list(s_points))
        r_tree, r_key = tree_for(list(r_points))
        s_program = program_for(s_tree, s_key)
        r_program = program_for(r_tree, r_key)
        # A cached program may have been laid out over an earlier (equal)
        # tree instance — e.g. after the tree cache evicted its entry.  The
        # program's tree carries the page ids its arrival arithmetic was
        # built from, so it is the authoritative index object.
        s_tree = s_program.tree
        r_tree = r_program.tree
        region = Rect.union_of([s_tree.mbr, r_tree.mbr])
        env = cls(
            s_points=list(s_points),
            r_points=list(r_points),
            s_tree=s_tree,
            r_tree=r_tree,
            s_program=s_program,
            r_program=r_program,
            params=params,
            region=region,
            loss=loss,
        )
        env._s_object_index = {
            p: i for i, p in enumerate(s_tree.iter_points())
        }
        env._r_object_index = {
            p: i for i, p in enumerate(r_tree.iter_points())
        }
        return env

    # ------------------------------------------------------------------
    # Per-query channel state
    # ------------------------------------------------------------------
    def tuners(
        self, phase_s: float = 0.0, phase_r: float = 0.0
    ) -> Tuple[ChannelTuner, ChannelTuner]:
        """Fresh tuners for one query, with the given channel phases."""
        return (
            ChannelTuner(
                BroadcastChannel(self.s_program, phase=phase_s), loss=self.loss
            ),
            ChannelTuner(
                BroadcastChannel(self.r_program, phase=phase_r), loss=self.loss
            ),
        )

    def random_phases(self, rng: random.Random) -> Tuple[float, float]:
        """Random phases, one per channel — the paper's random waiting time
        for the two roots."""
        return (
            rng.uniform(0, self.s_program.cycle_length),
            rng.uniform(0, self.r_program.cycle_length),
        )

    def random_query_point(self, rng: random.Random) -> Point:
        """A query point uniform over the datasets' common region."""
        return Point(
            rng.uniform(self.region.xmin, self.region.xmax),
            rng.uniform(self.region.ymin, self.region.ymax),
        )

    # ------------------------------------------------------------------
    # Data-object lookup (for final attribute retrieval)
    # ------------------------------------------------------------------
    def s_object_of(self, point: Point) -> int:
        """Broadcast object index of an S point (leaf order)."""
        return self._s_object_index[point]

    def r_object_of(self, point: Point) -> int:
        """Broadcast object index of an R point (leaf order)."""
        return self._r_object_index[point]
