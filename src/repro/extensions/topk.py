"""Top-k TNN: the k best pairs instead of only the minimum.

A natural generalisation beyond the paper: return the ``k`` pairs
``(s, r)`` with the smallest transitive distances (e.g. "give me three
good post-office/restaurant combinations to choose from").

Estimate-phase soundness: take the ``k`` nearest ``s_i`` to ``p``
(broadcast kNN on channel 1) and ``r_1 = p.NN(R)`` (channel 2, in
parallel).  The ``k`` pairs ``(s_i, r_1)`` are distinct, so the k-th best
overall total is at most ``D = max_i [ dis(p,s_i) + dis(s_i,r_1) ]``; by
the Theorem 1 argument every object of every top-k pair then lies inside
``circle(p, D)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.client import (
    BroadcastKNNSearch,
    BroadcastNNSearch,
    BroadcastRangeSearch,
    run_all,
)
from repro.core.environment import TNNEnvironment
from repro.geometry import Circle, Point, distance, transitive_distance


@dataclass
class TopKResult:
    """The k best pairs (ascending by transitive distance) plus metrics."""

    query: Point
    pairs: List[Tuple[Point, Point, float]]
    radius: float
    access_time: float
    tune_in_time: int

    @property
    def k(self) -> int:
        return len(self.pairs)


class TopKTNN:
    """Answer top-k TNN queries over the two broadcast channels."""

    name = "topk-tnn"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def run(
        self,
        env: TNNEnvironment,
        query: Point,
        phase_s: float = 0.0,
        phase_r: float = 0.0,
    ) -> TopKResult:
        tuner_s, tuner_r = env.tuners(phase_s, phase_r)

        knn_s = BroadcastKNNSearch(env.s_tree, tuner_s, query, self.k)
        nn_r = BroadcastNNSearch(env.r_tree, tuner_r, query)
        run_all([knn_s, nn_r])
        s_candidates = knn_s.results()
        r1, _ = nn_r.result()
        radius = max(
            distance(query, s) + distance(s, r1) for s, _ in s_candidates
        )
        estimate_finish = max(tuner_s.now, tuner_r.now)

        circle = Circle(query, radius)
        range_s = BroadcastRangeSearch(env.s_tree, tuner_s, circle, estimate_finish)
        range_r = BroadcastRangeSearch(env.r_tree, tuner_r, circle, estimate_finish)
        run_all([range_s, range_r])

        pairs = topk_join(query, range_s.results, range_r.results, self.k)
        return TopKResult(
            query=query,
            pairs=pairs,
            radius=radius,
            access_time=max(tuner_s.now, tuner_r.now),
            tune_in_time=tuner_s.pages_downloaded + tuner_r.pages_downloaded,
        )


def topk_join(
    p: Point,
    s_cands: Sequence[Point],
    r_cands: Sequence[Point],
    k: int,
) -> List[Tuple[Point, Point, float]]:
    """The k smallest-total pairs over the candidate sets, ascending.

    Vectorises the pairwise totals with numpy and keeps a k-bounded heap,
    pruning whole rows whose first hop already exceeds the current k-th
    best total.
    """
    if not s_cands or not r_cands:
        return []
    s_arr = np.asarray(s_cands, dtype=float)
    r_arr = np.asarray(r_cands, dtype=float)
    d_ps = np.hypot(s_arr[:, 0] - p.x, s_arr[:, 1] - p.y)
    order = np.argsort(d_ps)

    heap: List[Tuple[float, int, int]] = []  # max-heap via negated totals
    seq = 0
    for i in order:
        if len(heap) == k and d_ps[i] >= -heap[0][0]:
            break
        dx = s_arr[i, 0] - r_arr[:, 0]
        dy = s_arr[i, 1] - r_arr[:, 1]
        totals = d_ps[i] + np.hypot(dx, dy)
        for j in np.argsort(totals)[: k]:
            total = float(totals[j])
            if len(heap) < k:
                heapq.heappush(heap, (-total, seq, (int(i), int(j))))
                seq += 1
            elif total < -heap[0][0]:
                heapq.heapreplace(heap, (-total, seq, (int(i), int(j))))
                seq += 1
            else:
                break

    out = []
    for neg_total, _, (i, j) in sorted(heap, key=lambda e: -e[0]):
        out.append(
            (
                Point(float(s_arr[i, 0]), float(s_arr[i, 1])),
                Point(float(r_arr[j, 0]), float(r_arr[j, 1])),
                -neg_total,
            )
        )
    return out


def topk_oracle(
    p: Point,
    s_points: Sequence[Point],
    r_points: Sequence[Point],
    k: int,
) -> List[float]:
    """Ground truth: the k smallest transitive totals, ascending."""
    totals = sorted(
        transitive_distance(p, s, r) for s in s_points for r in r_points
    )
    return totals[:k]
