"""Generalised TNN queries — the paper's future-work roadmap (Section 7).

The conclusion sketches three extensions, all implemented here over the
same broadcast substrate:

1. :class:`ChainTNN` — more than two datasets, one broadcast channel each,
   visited in a specified order (``p -> D1 -> D2 -> ... -> Dk``);
2. :class:`UnorderedTNN` — two datasets with a free visiting order (the
   trip-planning flavour: whichever of S-then-R / R-then-S is shorter);
3. :class:`RoundTripTNN` — a complete tour that returns to the starting
   point (``p -> s -> r -> p``).

Each follows the estimate-filter paradigm: parallel NN searches seed a
provably sufficient search radius (the Theorem 1 argument extends to every
variant — each leg of the optimal route upper-bounds the straight-line
distance from ``p`` to the object), then parallel range queries and a local
join finish the query.
"""

from repro.extensions.chain import ChainEnvironment, ChainResult, ChainTNN, chain_oracle
from repro.extensions.roundtrip import RoundTripResult, RoundTripTNN, roundtrip_oracle
from repro.extensions.unordered import UnorderedResult, UnorderedTNN, unordered_oracle
from repro.extensions.topk import TopKResult, TopKTNN, topk_join, topk_oracle
from repro.extensions.hybrid_chain import HybridChainTNN

__all__ = [
    "HybridChainTNN",
    "ChainEnvironment",
    "ChainTNN",
    "ChainResult",
    "chain_oracle",
    "RoundTripTNN",
    "RoundTripResult",
    "roundtrip_oracle",
    "UnorderedTNN",
    "UnorderedResult",
    "unordered_oracle",
    "TopKTNN",
    "TopKResult",
    "topk_join",
    "topk_oracle",
]
