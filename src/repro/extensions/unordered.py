"""Order-free TNN: visit one object of each type in whichever order wins.

Extension 2 of the paper's roadmap (the trip-planning-query flavour of
Li et al.): minimise over both visiting orders

    ``min( dis(p,s) + dis(s,r),  dis(p,r) + dis(r,s) )``.

The estimate runs the same two parallel NN searches as Double-NN; both
chainings of the NN results are feasible routes, and the smaller one is a
sound radius for the combined answer: the optimum is no longer than it,
and every optimal object lies within that distance of ``p`` regardless of
which order wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.client import BroadcastNNSearch, BroadcastRangeSearch, run_all
from repro.core.environment import TNNEnvironment
from repro.geometry import Circle, Point, distance


@dataclass
class UnorderedResult:
    """Answer, winning order and cost metrics of one order-free query."""

    query: Point
    s: Optional[Point]
    r: Optional[Point]
    #: "s-first" or "r-first".
    order: str
    distance: float
    radius: float
    access_time: float
    tune_in_time: int


class UnorderedTNN:
    """Double-NN estimate; join over both visiting orders."""

    name = "unordered-tnn"

    def run(
        self,
        env: TNNEnvironment,
        query: Point,
        phase_s: float = 0.0,
        phase_r: float = 0.0,
    ) -> UnorderedResult:
        tuner_s, tuner_r = env.tuners(phase_s, phase_r)

        nn_s = BroadcastNNSearch(env.s_tree, tuner_s, query)
        nn_r = BroadcastNNSearch(env.r_tree, tuner_r, query)
        run_all([nn_s, nn_r])
        s0, _ = nn_s.result()
        r0, _ = nn_r.result()
        d_sfirst = distance(query, s0) + distance(s0, r0)
        d_rfirst = distance(query, r0) + distance(r0, s0)
        radius = min(d_sfirst, d_rfirst)
        estimate_finish = max(tuner_s.now, tuner_r.now)

        circle = Circle(query, radius)
        range_s = BroadcastRangeSearch(env.s_tree, tuner_s, circle, estimate_finish)
        range_r = BroadcastRangeSearch(env.r_tree, tuner_r, circle, estimate_finish)
        run_all([range_s, range_r])

        seed = (s0, r0, "s-first" if d_sfirst <= d_rfirst else "r-first", radius)
        s, r, order, dist = _unordered_join(
            query, range_s.results, range_r.results, seed
        )
        return UnorderedResult(
            query=query,
            s=s,
            r=r,
            order=order,
            distance=dist,
            radius=radius,
            access_time=max(tuner_s.now, tuner_r.now),
            tune_in_time=tuner_s.pages_downloaded + tuner_r.pages_downloaded,
        )


def _directed_best(
    p: Point, first: Sequence[Point], second: Sequence[Point]
) -> Tuple[Optional[Point], Optional[Point], float]:
    """Best ``p -> first -> second`` route over the candidate sets."""
    if not first or not second:
        return None, None, math.inf
    f_arr = np.asarray(first, dtype=float)
    s_arr = np.asarray(second, dtype=float)
    d_pf = np.hypot(f_arr[:, 0] - p.x, f_arr[:, 1] - p.y)
    dx = f_arr[:, 0:1] - s_arr[None, :, 0]
    dy = f_arr[:, 1:2] - s_arr[None, :, 1]
    totals = d_pf[:, None] + np.sqrt(dx * dx + dy * dy)
    i, j = divmod(int(np.argmin(totals)), len(s_arr))
    return (
        Point(float(f_arr[i, 0]), float(f_arr[i, 1])),
        Point(float(s_arr[j, 0]), float(s_arr[j, 1])),
        float(totals[i, j]),
    )


def _unordered_join(p, s_cands, r_cands, seed):
    s0, r0, seed_order, seed_dist = seed
    sf_s, sf_r, sf_d = _directed_best(p, s_cands, r_cands)
    rf_r, rf_s, rf_d = _directed_best(p, r_cands, s_cands)
    best = (s0, r0, seed_order, seed_dist)
    if sf_d < best[3]:
        best = (sf_s, sf_r, "s-first", sf_d)
    if rf_d < best[3]:
        best = (rf_s, rf_r, "r-first", rf_d)
    return best


def unordered_oracle(
    p: Point, s_points: Sequence[Point], r_points: Sequence[Point]
) -> Tuple[str, float]:
    """Ground truth: the winning order and optimal route length."""
    _, _, sf = _directed_best(p, list(s_points), list(r_points))
    _, _, rf = _directed_best(p, list(r_points), list(s_points))
    return ("s-first", sf) if sf <= rf else ("r-first", rf)
