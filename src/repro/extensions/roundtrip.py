"""Round-trip TNN: minimise ``dis(p,s) + dis(s,r) + dis(r,p)``.

Extension 3 of the paper's roadmap: the user returns to the starting point
after visiting both object types (post office, restaurant, then home).
Estimate and filter mirror Double-NN; only the route-length functional and
the join objective change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.client import BroadcastNNSearch, BroadcastRangeSearch, run_all
from repro.core.environment import TNNEnvironment
from repro.geometry import Circle, Point, distance


def roundtrip_length(p: Point, s: Point, r: Point) -> float:
    """The full tour length ``p -> s -> r -> p``."""
    return distance(p, s) + distance(s, r) + distance(r, p)


@dataclass
class RoundTripResult:
    """Answer and cost metrics of one round-trip TNN query."""

    query: Point
    s: Optional[Point]
    r: Optional[Point]
    distance: float
    radius: float
    access_time: float
    tune_in_time: int


class RoundTripTNN:
    """Double-NN estimate with a round-trip objective."""

    name = "roundtrip-tnn"

    def run(
        self,
        env: TNNEnvironment,
        query: Point,
        phase_s: float = 0.0,
        phase_r: float = 0.0,
    ) -> RoundTripResult:
        tuner_s, tuner_r = env.tuners(phase_s, phase_r)

        nn_s = BroadcastNNSearch(env.s_tree, tuner_s, query)
        nn_r = BroadcastNNSearch(env.r_tree, tuner_r, query)
        run_all([nn_s, nn_r])
        s0, _ = nn_s.result()
        r0, _ = nn_r.result()
        radius = roundtrip_length(query, s0, r0)
        estimate_finish = max(tuner_s.now, tuner_r.now)

        circle = Circle(query, radius)
        range_s = BroadcastRangeSearch(env.s_tree, tuner_s, circle, estimate_finish)
        range_r = BroadcastRangeSearch(env.r_tree, tuner_r, circle, estimate_finish)
        run_all([range_s, range_r])

        s, r, dist = _roundtrip_join(
            query, range_s.results, range_r.results, (s0, r0), radius
        )
        return RoundTripResult(
            query=query,
            s=s,
            r=r,
            distance=dist,
            radius=radius,
            access_time=max(tuner_s.now, tuner_r.now),
            tune_in_time=tuner_s.pages_downloaded + tuner_r.pages_downloaded,
        )


def _roundtrip_join(
    p: Point,
    s_cands: Sequence[Point],
    r_cands: Sequence[Point],
    seed_pair: Tuple[Point, Point],
    seed_dist: float,
) -> Tuple[Point, Point, float]:
    if not s_cands or not r_cands:
        return seed_pair[0], seed_pair[1], seed_dist
    s_arr = np.asarray(s_cands, dtype=float)
    r_arr = np.asarray(r_cands, dtype=float)
    d_ps = np.hypot(s_arr[:, 0] - p.x, s_arr[:, 1] - p.y)
    d_rp = np.hypot(r_arr[:, 0] - p.x, r_arr[:, 1] - p.y)
    dx = s_arr[:, 0:1] - r_arr[None, :, 0]
    dy = s_arr[:, 1:2] - r_arr[None, :, 1]
    totals = d_ps[:, None] + np.sqrt(dx * dx + dy * dy) + d_rp[None, :]
    i, j = divmod(int(np.argmin(totals)), len(r_arr))
    best = float(totals[i, j])
    if best >= seed_dist:
        return seed_pair[0], seed_pair[1], seed_dist
    return (
        Point(float(s_arr[i, 0]), float(s_arr[i, 1])),
        Point(float(r_arr[j, 0]), float(r_arr[j, 1])),
        best,
    )


def roundtrip_oracle(
    p: Point, s_points: Sequence[Point], r_points: Sequence[Point]
) -> Tuple[Point, Point, float]:
    """Ground-truth optimal round trip over the full datasets."""
    best: Tuple[Optional[Point], Optional[Point], float] = (None, None, math.inf)
    for s in s_points:
        for r in r_points:
            total = roundtrip_length(p, s, r)
            if total < best[2]:
                best = (s, r, total)
    if best[0] is None:
        raise ValueError("round-trip oracle requires non-empty datasets")
    return best  # type: ignore[return-value]
