"""Hybrid-style re-steering for chain TNN queries.

:class:`~repro.extensions.chain.ChainTNN` generalises Double-NN: all ``k``
NN searches run from the query point.  This module generalises **Hybrid-NN
Case 2** instead: whenever the search for hop ``i`` completes, the search
for hop ``i+1`` (if still running) is retargeted from ``p`` to the hop-i
result, so each leg of the seed route is measured from its actual
predecessor rather than from ``p`` — a tighter feasible route and
therefore a smaller filter radius.

Soundness is unchanged: the seed route is still a real route through one
object per dataset, so the Theorem 1 containment argument applies
verbatim.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.client import BroadcastNNSearch, BroadcastRangeSearch, run_all
from repro.extensions.chain import (
    ChainEnvironment,
    ChainResult,
    _chain_join,
    _route_length,
)
from repro.geometry import Circle, Point


class HybridChainTNN:
    """Chain TNN with cascade re-steering of successive hops."""

    name = "hybrid-chain-tnn"

    def run(
        self,
        env: ChainEnvironment,
        query: Point,
        phases: Sequence[float] | None = None,
    ) -> ChainResult:
        tuners = env.tuners(phases)
        searches: List[BroadcastNNSearch] = [
            BroadcastNNSearch(tree, tuner, query)
            for tree, tuner in zip(env.trees, tuners)
        ]
        #: retargeted[i] is True once search i's query point was re-steered
        #: to the hop-(i-1) result.
        retargeted = [False] * env.k

        def coordinator(_stepped) -> None:
            for i in range(env.k - 1):
                nxt = searches[i + 1]
                if (
                    searches[i].finished()
                    and not nxt.finished()
                    and not retargeted[i + 1]
                ):
                    hop, _ = searches[i].result()
                    nxt.retarget(hop)
                    retargeted[i + 1] = True

        # The coordinator only ever acts on a finish transition (hop i
        # finishing unlocks re-steering hop i+1), so finish-driven
        # scheduling is equivalent to polling after every step.
        run_all(searches, on_finish=coordinator)
        hops = [s.result()[0] for s in searches]
        radius = _route_length(query, hops)
        estimate_finish = max(t.now for t in tuners)

        circle = Circle(query, radius)
        ranges = [
            BroadcastRangeSearch(tree, tuner, circle, start_time=estimate_finish)
            for tree, tuner in zip(env.trees, tuners)
        ]
        run_all(ranges)

        route, dist = _chain_join(
            query,
            [rq.results for rq in ranges],
            seed_route=hops,
            seed_dist=radius,
        )
        return ChainResult(
            query=query,
            route=route,
            distance=dist,
            radius=radius,
            access_time=max(t.now for t in tuners),
            tune_in_time=sum(t.pages_downloaded for t in tuners),
            per_channel_tune_in=[t.pages_downloaded for t in tuners],
        )
