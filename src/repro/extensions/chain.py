"""Chain TNN: ``k > 2`` datasets on ``k`` channels, visited in order.

Extension 1 of the paper's roadmap.  The estimate phase runs ``k`` NN
searches from the query point in parallel (one per channel) and chains the
results into a feasible route whose length bounds the search radius; the
filter phase runs ``k`` parallel range queries and a layered min-plus
dynamic program finds the optimal chain among the candidates.

Radius soundness is the Theorem 1 argument applied per layer: for any
object ``o_i`` of the optimal chain, the prefix of the optimal route from
``p`` to ``o_i`` is at least ``dis(p, o_i)``, so every optimal object lies
within ``circle(p, d)`` for any feasible route length ``d``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastNNSearch, BroadcastRangeSearch, run_all
from repro.geometry import Circle, Point, Rect, distance
from repro.rtree import RTree, build_rtree


@dataclass
class ChainEnvironment:
    """``k`` indexed datasets, one broadcast channel each."""

    datasets: List[List[Point]]
    trees: List[RTree]
    programs: List[BroadcastProgram]
    params: SystemParameters
    region: Rect

    @classmethod
    def build(
        cls,
        datasets: Sequence[Sequence[Point]],
        params: SystemParameters | None = None,
        m: int | None = None,
    ) -> "ChainEnvironment":
        if len(datasets) < 2:
            raise ValueError("a chain needs at least two datasets")
        params = params or SystemParameters()
        trees = [
            build_rtree(list(ds), params.leaf_capacity, params.internal_fanout)
            for ds in datasets
        ]
        programs = [BroadcastProgram(t, params, m=m) for t in trees]
        region = Rect.union_of([t.mbr for t in trees])
        return cls(
            datasets=[list(ds) for ds in datasets],
            trees=trees,
            programs=programs,
            params=params,
            region=region,
        )

    @property
    def k(self) -> int:
        return len(self.datasets)

    def tuners(self, phases: Sequence[float] | None = None) -> List[ChannelTuner]:
        phases = phases if phases is not None else [0.0] * self.k
        if len(phases) != self.k:
            raise ValueError(f"expected {self.k} phases, got {len(phases)}")
        return [
            ChannelTuner(BroadcastChannel(prog, phase=ph))
            for prog, ph in zip(self.programs, phases)
        ]

    def random_phases(self, rng: random.Random) -> List[float]:
        return [rng.uniform(0, prog.cycle_length) for prog in self.programs]

    def random_query_point(self, rng: random.Random) -> Point:
        return Point(
            rng.uniform(self.region.xmin, self.region.xmax),
            rng.uniform(self.region.ymin, self.region.ymax),
        )


@dataclass
class ChainResult:
    """Answer and cost metrics of one chain-TNN query."""

    query: Point
    route: List[Point]
    distance: float
    radius: float
    access_time: float
    tune_in_time: int
    per_channel_tune_in: List[int] = field(default_factory=list)


class ChainTNN:
    """Double-NN generalised to ``k`` channels."""

    name = "chain-tnn"

    def run(
        self,
        env: ChainEnvironment,
        query: Point,
        phases: Sequence[float] | None = None,
    ) -> ChainResult:
        tuners = env.tuners(phases)

        # Estimate: k parallel NN searches from the query point.
        searches = [
            BroadcastNNSearch(tree, tuner, query)
            for tree, tuner in zip(env.trees, tuners)
        ]
        run_all(searches)
        hops = [s.result()[0] for s in searches]
        radius = _route_length(query, hops)
        estimate_finish = max(t.now for t in tuners)

        # Filter: k parallel range queries with the shared radius.
        circle = Circle(query, radius)
        ranges = [
            BroadcastRangeSearch(tree, tuner, circle, start_time=estimate_finish)
            for tree, tuner in zip(env.trees, tuners)
        ]
        run_all(ranges)
        layers = [rq.results for rq in ranges]

        route, dist = _chain_join(query, layers, seed_route=hops, seed_dist=radius)
        return ChainResult(
            query=query,
            route=route,
            distance=dist,
            radius=radius,
            access_time=max(t.now for t in tuners),
            tune_in_time=sum(t.pages_downloaded for t in tuners),
            per_channel_tune_in=[t.pages_downloaded for t in tuners],
        )


def _route_length(p: Point, hops: Sequence[Point]) -> float:
    total = distance(p, hops[0])
    for a, b in zip(hops, hops[1:]):
        total += distance(a, b)
    return total


def _chain_join(
    p: Point,
    layers: Sequence[Sequence[Point]],
    seed_route: Sequence[Point],
    seed_dist: float,
) -> Tuple[List[Point], float]:
    """Layered min-plus DP over the candidate sets.

    Falls back to the seed route when any layer came back empty (cannot
    happen for the exact estimate, whose own hops lie inside the circle,
    but keeps the join total).
    """
    if any(not layer for layer in layers):
        return list(seed_route), seed_dist

    arrays = [np.asarray(layer, dtype=float) for layer in layers]
    cost = np.hypot(arrays[0][:, 0] - p.x, arrays[0][:, 1] - p.y)
    back: List[np.ndarray] = []
    for prev, cur in zip(arrays, arrays[1:]):
        dx = prev[:, 0:1] - cur[None, :, 0]
        dy = prev[:, 1:2] - cur[None, :, 1]
        step = np.sqrt(dx * dx + dy * dy) + cost[:, None]
        back.append(np.argmin(step, axis=0))
        cost = np.min(step, axis=0)

    end = int(np.argmin(cost))
    dist = float(cost[end])
    if dist >= seed_dist:
        return list(seed_route), seed_dist

    # Reconstruct the route backwards through the argmin tables.
    idx = end
    route_rev = [Point(*map(float, arrays[-1][idx]))]
    for layer_i in range(len(arrays) - 2, -1, -1):
        idx = int(back[layer_i][idx])
        route_rev.append(Point(*map(float, arrays[layer_i][idx])))
    return list(reversed(route_rev)), dist


def chain_oracle(p: Point, datasets: Sequence[Sequence[Point]]) -> Tuple[List[Point], float]:
    """Ground-truth optimal chain via DP over the *full* datasets."""
    if any(not ds for ds in datasets):
        raise ValueError("chain oracle requires non-empty datasets")
    return _chain_join(p, datasets, seed_route=[], seed_dist=float("inf"))
