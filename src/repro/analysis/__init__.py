"""Analytical cost models for broadcast access.

Closed-form first-order expectations for the quantities the simulator
measures: root wait, index overhead, the optimal (1, m) replication
factor, and the uniform-data NN/TNN radius expectations behind
Approximate-TNN.  The test suite cross-validates each model against the
simulation — when the two diverge, one of them is wrong.
"""

from repro.analysis.models import (
    expected_object_wait,
    expected_root_wait,
    expected_search_radius_tnn,
    index_overhead_ratio,
    optimal_m_analytic,
    probe_wait_curve,
)

__all__ = [
    "expected_root_wait",
    "expected_object_wait",
    "index_overhead_ratio",
    "optimal_m_analytic",
    "expected_search_radius_tnn",
    "probe_wait_curve",
]
