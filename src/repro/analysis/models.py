"""First-order analytical models of (1, m) broadcast access."""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.core.approximate import uniform_knn_radius


def expected_root_wait(index_pages: int, data_pages: int, m: int) -> float:
    """Expected wait for the next index root under (1, m), in pages.

    The root airs once per super-page; a client tuning in at a uniform
    instant waits half a super-page on average.
    """
    if index_pages <= 0 or m < 1:
        raise ValueError("need a positive index and m >= 1")
    chunk = math.ceil(data_pages / m) if data_pages else 0
    return (index_pages + chunk) / 2.0


def expected_object_wait(index_pages: int, data_pages: int, m: int) -> float:
    """Expected wait for one specific data page: half a full cycle."""
    if index_pages <= 0 or m < 1:
        raise ValueError("need a positive index and m >= 1")
    chunk = math.ceil(data_pages / m) if data_pages else 0
    cycle = m * (index_pages + chunk)
    return cycle / 2.0


def index_overhead_ratio(index_pages: int, data_pages: int, m: int) -> float:
    """Fraction of the cycle spent broadcasting index rather than data."""
    if index_pages <= 0 or m < 1:
        raise ValueError("need a positive index and m >= 1")
    chunk = math.ceil(data_pages / m) if data_pages else 0
    cycle = m * (index_pages + chunk)
    return m * index_pages / cycle


def optimal_m_analytic(index_pages: int, data_pages: int) -> float:
    """The real-valued optimum ``m* = sqrt(data / index)`` (Imielinski).

    Minimises expected access time ``root_wait(m) + c·cycle(m)`` to first
    order; the broadcast program rounds it to an integer.
    """
    if index_pages <= 0:
        raise ValueError("need a positive index")
    if data_pages <= 0:
        return 1.0
    return math.sqrt(data_pages / index_pages)


def expected_search_radius_tnn(n_s: int, n_r: int, area: float) -> float:
    """The Approximate-TNN radius ``r_1(S) + r_1(R)`` (Equation 1)."""
    return uniform_knn_radius(n_s, area) + uniform_knn_radius(n_r, area)


def probe_wait_curve(
    index_pages: int, data_pages: int, m_values: Sequence[int]
) -> Dict[int, float]:
    """Expected first-probe wait as a function of m (the U-shape's left arm
    combined with the cycle growth on the right).

    A TNN query pays roughly one root wait at the start plus a fraction of
    a cycle to finish the filter phase; this simple two-term model
    ``root_wait(m) + cycle(m)/4`` reproduces the empirical U-shape of the
    interleaving ablation.
    """
    out = {}
    for m in m_values:
        chunk = math.ceil(data_pages / m) if data_pages else 0
        cycle = m * (index_pages + chunk)
        out[m] = expected_root_wait(index_pages, data_pages, m) + cycle / 4.0
    return out
