"""Visualising doze-mode: what the client radio actually does.

Air indexing exists so the radio can sleep: probe the index, doze, wake
exactly when the needed pages fly by.  This example answers one Hybrid-NN
query, then renders each channel's activity as an ASCII timeline — bursts
of ``#`` (receptions) separated by long stretches of ``.`` (dozing) — and
prints the duty cycle and an energy estimate.  A second run over a lossy
channel shows retransmission waits (``!``) stretching the timeline.

Run:  python examples/radio_timeline.py
"""

from repro import HybridNN, Point, TNNEnvironment
from repro.broadcast import BroadcastChannel, ChannelTuner, EnergyModel, PageLossModel
from repro.client import BroadcastNNSearch
from repro.datasets import uniform
from repro.sim import render_timeline, trace_summary


def main() -> None:
    env = TNNEnvironment.build(uniform(4_000, seed=1), uniform(4_000, seed=2))
    p = Point(19_500.0, 19_500.0)

    # Run one query manually so we keep the tuners (and their logs).
    tuner_s, tuner_r = env.tuners(phase_s=23.0, phase_r=71.0)
    algo = HybridNN()
    radius, seed_pair = algo._estimate(
        env, p, tuner_s, tuner_r, *algo._policies(env)
    )
    s, r, dist = algo._filter(
        env, p, radius, seed_pair, tuner_s, tuner_r, max(tuner_s.now, tuner_r.now)
    )
    print(f"Hybrid-NN answered: pair distance {dist:.1f}\n")
    print(render_timeline([tuner_s, tuner_r], labels=["S", "R"], width=72))

    energy = EnergyModel()
    for label, tuner in (("S", tuner_s), ("R", tuner_r)):
        summary = trace_summary(tuner)
        joules = energy.joules(summary.pages, tuner.now)
        print(
            f"channel {label}: {summary.pages} pages received, "
            f"duty cycle {summary.duty_cycle:.1%}, ~{joules * 1000:.1f} mJ"
        )

    # The same NN search over a fading channel: losses stretch the run.
    print("\nOne NN search over a 30%-loss channel:")
    lossy = ChannelTuner(
        BroadcastChannel(env.s_program, phase=23.0),
        loss=PageLossModel(rate=0.3, seed=4),
    )
    search = BroadcastNNSearch(env.s_tree, lossy, p)
    search.run_to_completion()
    print(render_timeline([lossy], labels=["S"], width=72))
    summary = trace_summary(lossy)
    print(
        f"{summary.pages} receptions, {summary.lost_pages} lost, "
        f"finished at t = {lossy.now:.0f} pages"
    )


if __name__ == "__main__":
    main()
