"""The ANN optimisation: trading estimate-phase pages for filter-phase pages.

Section 5 of the paper replaces the exact NN searches of the estimate phase
with approximate ones.  The search radius grows slightly (the filter phase
retrieves a few more pages) but the estimate traversal prunes far more
aggressively — the net effect is a lower total tune-in time, i.e. less
energy burned by the radio.

This example prints the per-phase breakdown so the trade-off is visible,
and sweeps the approximation factor to show the sweet spot.

Run:  python examples/energy_saving_ann.py
"""

import random

from repro import AnnOptimization, DoubleNN, TNNEnvironment, WindowBasedTNN
from repro.datasets import sized_uniform


def measure(env, algo, queries, rng_seed=5):
    rng = random.Random(rng_seed)
    est = filt = access = 0.0
    for p in queries:
        result = algo.run(env, p, *env.random_phases(rng))
        est += result.estimate_pages
        filt += result.filter_pages
        access += result.access_time
    n = len(queries)
    return est / n, filt / n, (est + filt) / n


def main() -> None:
    env = TNNEnvironment.build(
        sized_uniform(8_000, seed=1), sized_uniform(8_000, seed=2)
    )
    rng = random.Random(4)
    queries = [env.random_query_point(rng) for _ in range(25)]

    print("Double-NN / Window-Based with and without ANN (8,000 x 8,000 points)\n")
    print(f"{'configuration':<24} {'estimate':>9} {'filter':>8} {'total':>8}")
    configs = [
        ("double eNN", DoubleNN()),
        ("double ANN f=1", DoubleNN(optimization=AnnOptimization(1.0))),
        ("window eNN", WindowBasedTNN()),
        ("window ANN f=1", WindowBasedTNN(optimization=AnnOptimization(1.0))),
    ]
    for name, algo in configs:
        est, filt, total = measure(env, algo, queries)
        print(f"{name:<24} {est:>9.1f} {filt:>8.1f} {total:>8.1f}")

    print("\nApproximation factor sweep (Double-NN):")
    print(f"{'factor':<10} {'estimate':>9} {'filter':>8} {'total':>8}")
    for factor in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0):
        algo = (
            DoubleNN()
            if factor == 0.0
            else DoubleNN(optimization=AnnOptimization(factor, density_aware=False))
        )
        est, filt, total = measure(env, algo, queries)
        label = "exact" if factor == 0.0 else f"{factor:g}"
        print(f"{label:<10} {est:>9.1f} {filt:>8.1f} {total:>8.1f}")

    print(
        "\nThe estimate column shrinks with the factor while the filter "
        "column grows —\nthe paper's Equation 4 dynamic alpha finds the "
        "profitable middle ground."
    )


if __name__ == "__main__":
    main()
