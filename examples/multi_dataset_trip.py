"""Generalised TNN: chains, free visiting order, and round trips.

The paper's future-work roadmap (Section 7) sketches three extensions,
all implemented in :mod:`repro.extensions`.  A tourist wants to visit an
ATM, then a pharmacy, then a bakery (a 3-hop chain on 3 channels); decide
which of two errands to run first (order-free TNN); and get home afterwards
(round-trip TNN).

Run:  python examples/multi_dataset_trip.py
"""

import random

from repro import Point, TNNEnvironment
from repro.datasets import uniform
from repro.extensions import (
    ChainEnvironment,
    ChainTNN,
    RoundTripTNN,
    UnorderedTNN,
)
from repro.geometry import Rect

REGION = Rect(0.0, 0.0, 10_000.0, 10_000.0)


def main() -> None:
    rng = random.Random(3)

    # --- 1. Chain TNN over three datasets / three channels -------------
    atms = uniform(400, seed=11, region=REGION)
    pharmacies = uniform(300, seed=12, region=REGION)
    bakeries = uniform(500, seed=13, region=REGION)
    chain_env = ChainEnvironment.build([atms, pharmacies, bakeries])
    p = Point(5_000.0, 5_000.0)
    chain = ChainTNN().run(chain_env, p, chain_env.random_phases(rng))
    print("Chain TNN  (ATM -> pharmacy -> bakery):")
    print(f"  route length {chain.distance:.0f}, "
          f"access {chain.access_time:.0f} pages, "
          f"tune-in {chain.tune_in_time} pages")
    for label, stop in zip(("ATM", "pharmacy", "bakery"), chain.route):
        print(f"  {label:<9} at ({stop.x:.0f}, {stop.y:.0f})")

    # --- 2. Order-free TNN over two datasets ---------------------------
    env = TNNEnvironment.build(
        uniform(400, seed=21, region=REGION), uniform(400, seed=22, region=REGION)
    )
    unordered = UnorderedTNN().run(env, p, *env.random_phases(rng))
    print("\nOrder-free TNN (visit S and R in either order):")
    print(f"  best order: {unordered.order}, length {unordered.distance:.0f}")

    # --- 3. Round-trip TNN ---------------------------------------------
    rt = RoundTripTNN().run(env, p, *env.random_phases(rng))
    print("\nRound-trip TNN (p -> s -> r -> p):")
    print(f"  tour length {rt.distance:.0f} "
          f"(one-way pair would be {unordered.distance:.0f})")
    print(f"  s = ({rt.s.x:.0f}, {rt.s.y:.0f}), r = ({rt.r.x:.0f}, {rt.r.y:.0f})")


if __name__ == "__main__":
    main()
