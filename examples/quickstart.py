"""Quickstart: answer one TNN query over a two-channel broadcast.

Builds two uniform datasets, lays them out as (1, m)-interleaved broadcast
programs, and answers a transitive nearest-neighbor query with each of the
paper's algorithms, printing the answer and the two cost metrics.  A
second section serves a mixed NN / kNN / range / window batch through the
shared-scan executor (``QueryEngine.run_many``): every client request is
answered from one page-major pass over the broadcast cycle.

Architecture note — the columnar frontier arena.  Each steppable search
queues its R-tree candidates in an arrival frontier ordered by cyclic
page position.  Single searches (everything in this example's first
section) keep the frontier's python list lanes, the fastest layout at
per-query queue sizes.  When the shared-scan executor serves a whole
workload, the fast NN searches' frontiers are *attached* to one
``FrontierArena``: every queued entry of every search lives in shared
numpy lanes addressed per search by an (offset, length) segment, and
each round's head selection, certified prune consumption and fan-out
staging run as whole-workload array passes instead of per-entry python.
The boxed-tuple heap remains the bit-identity oracle and engages
automatically wherever the cyclic closed form does not hold — scalar
mode (``REPRO_NO_KERNELS=1``) and layouts without cyclic page order
(distributed indexing, broadcast-disk schedules).

Architecture note — the columnar tuner ledger.  Every search accounts
its radio on a ``ChannelTuner`` — clock, page counters and a reception
log, four scalars and a list, the cheapest layout for one query (and
the bit-identity oracle).  When the shared-scan executor serves a
workload, the arena-served searches' tuners are *attached* to one
``TunerLedger``: their state moves into shared numpy lanes (one row per
tuner) plus a packed event arena replacing the per-tuner tuple logs,
and the executor books the whole round's downloads with one vectorised
flush alongside the arena flush.  Attachment is transparent — an
attached tuner routes its public attributes to its ledger row, and
``tuner.log`` materialises lazily from the event arena as the same
tuples the scalar oracle writes — so result constructors and trace
tooling never know which backend they read.  ``REPRO_SCALAR_TUNERS=1``
forces every tuner to stay standalone (the escape hatch mirroring
``REPRO_NO_KERNELS``); non-cyclic layouts skip attachment automatically
and burst on the per-query oracle path.

Architecture note — the global node store and binned phase A.  The
arena's serve phase used to finish each round with a python loop over
the surviving rows; now each R-tree caches a ``NodeStore`` — columnar
MBR / level / child-pointer / packed-lane-key arrays over its BFS node
order, plus a page-id column — and the whole round resolves as array
passes: automatic keeps, staged keep certificates, the weak margin
band batched through one exact Lemma 1 kernel call, and the survivors
handed to the absorb stage pre-binned by a stable argsort over packed
lane keys (fan-out width, leaf bit, point bit).  The store's struct
columns are layout-independent and cached once per tree; only the page
column binds the broadcast numbering, so relayouts
(``assign_page_ids``) invalidate just that column and the next serve
rebuilds it — registering a search never has to copy node data.
``REPRO_NO_NODE_STORE=1`` forces the retained scalar row loop, the
bit-identity oracle for answers, tuner states and reception logs
(mirroring ``REPRO_NO_KERNELS`` / ``REPRO_SCALAR_TUNERS``).

Architecture note — channel fault models and supervised pools.  The
unreliable medium lives behind the ``FaultModel`` seam
(``repro.broadcast.loss``): pass ``loss=`` to ``TNNEnvironment.build``
— i.i.d. ``PageLossModel``, bursty ``GilbertElliottLossModel``,
checksum-failing ``PageCorruptionModel``, or anything registered via
``register_fault_model`` (``available_fault_models()`` lists what is
installed; this script prints it, and
``benchmarks/profile_hot_path.py --help`` offers the same registry as
``--loss`` choices) — and every tuner retries failed receptions at
the page's next replica, counting erasures (``lost_pages``) apart from
corruption (``corrupt_pages``).  Faulty NN searches stay on the
arena/ledger fast path: the round flush replays each retry chain closed
form (replicas sit exactly one cycle apart), bit-identically to the
per-query retry loop, so robustness no longer costs the shared-scan
speedup.  Only the drain serves (kNN / range / window) burst on the
per-query oracle under loss.  One tier up, ``SharedScanRunner``'s pool
shards run under a supervisor — crashed or hung workers
(``REPRO_SHARD_TIMEOUT``) trigger pool rebuild, resharding and retries
with backoff (``REPRO_SHARD_RETRIES`` / ``REPRO_SHARD_BACKOFF``),
degrading to in-process serial execution last — and every recovery path
merges bit-identical results because shards are pure functions of their
query slice.

Architecture note — pluggable air-index backends.  Schedule generation
lives behind the ``BroadcastLayout`` seam (``repro.broadcast.layout``):
a layout object decides which air index is packed over the dataset
(R-tree, fixed grid, quadtree), which broadcast schedule its pages fly
in (uniform (1, m) interleave, distributed indexing, skew-aware
broadcast disks), and declares ``has_cyclic_order`` so the client stack
picks the right queue backend automatically.  Pass ``layout=`` to
``TNNEnvironment.build`` — e.g. ``make_layout("quadtree")`` or
``BroadcastDiskSchedule(hot_region=...)`` — and everything downstream
(queries, shared scan, sweeps) works unchanged; the final section below
answers the same batch on a grid air index.  New backends subclass
``BroadcastLayout`` and ``register_layout`` a factory; see
``benchmarks/bench_air_index_matrix.py`` for the backend x population
comparison matrix.

Architecture note — the distributed campaign runner.  Bulk campaigns
scale past one machine through ``repro.engine.distributed``: a
coordinator cuts the workload into s-phase-ordered query-slice shards
and leases them to whatever workers connect over TCP (length-prefixed
pickle frames), merging streamed result chunks first-write-wins into
the exact list ``SharedScanRunner`` would return.  Heartbeats with a
miss budget and per-lease deadlines catch dead, frozen or slow workers;
a revoked lease bumps the shard's epoch (so a zombie's late chunks are
rejected — nothing double-books) and the unfinished remainder is
resharded across survivors with backoff.  When no worker ever shows up
— or all of them die — the remainder degrades to the supervised local
pool, then to in-process serial execution, so a campaign always
completes and every rung is bit-identical.  Two-terminal demo:

    # terminal 1 — coordinator (prints the chosen port, waits, runs)
    python -m repro.engine.distributed coordinator \\
        --bind 127.0.0.1:7077 --queries 10000 --points 2000

    # terminal 2 (and any machine that can reach it) — worker
    python -m repro.engine.distributed worker --connect 127.0.0.1:7077

or, in code, ``QueryEngine(env).run_campaign(workload, HybridNN(),
spawn_workers=2)``.

Run:  python examples/quickstart.py
"""

from repro import (
    ApproximateTNN,
    BruteForceTNN,
    DoubleNN,
    HybridNN,
    Point,
    SystemParameters,
    TNNEnvironment,
    WindowBasedTNN,
)
from repro.broadcast import available_fault_models, make_layout
from repro.datasets import uniform
from repro.engine import (
    KNNRequest,
    NNRequest,
    QueryEngine,
    RangeRequest,
    WindowRequest,
)
from repro.geometry import Rect


def main() -> None:
    # Channel 1 broadcasts S (say, post offices), channel 2 broadcasts R
    # (say, restaurants), both indexed by STR-packed R-trees.
    s_points = uniform(3_000, seed=1)
    r_points = uniform(3_000, seed=2)
    env = TNNEnvironment.build(
        s_points, r_points, SystemParameters(page_capacity=64)
    )
    print(
        f"Channel 1: |S| = {len(s_points)} points, "
        f"{env.s_program.index_length} index pages, "
        f"(1, {env.s_program.m}) interleaving, "
        f"cycle = {env.s_program.cycle_length} pages"
    )
    print(
        f"Channel 2: |R| = {len(r_points)} points, "
        f"{env.r_program.index_length} index pages, "
        f"(1, {env.r_program.m}) interleaving, "
        f"cycle = {env.r_program.cycle_length} pages"
    )

    # Mr. Smith stands at p and wants the post office + restaurant pair
    # minimising his total walk: dis(p, s) + dis(s, r).
    p = Point(19_500.0, 19_500.0)
    print(f"\nTNN query at p = ({p.x:.0f}, {p.y:.0f})\n")

    algorithms = [
        BruteForceTNN(),
        WindowBasedTNN(),
        ApproximateTNN(),
        DoubleNN(),
        HybridNN(),
    ]
    header = f"{'algorithm':<16} {'distance':>10} {'access':>8} {'tune-in':>8}"
    print(header)
    print("-" * len(header))
    for algo in algorithms:
        result = algo.run(env, p, phase_s=11.0, phase_r=37.0)
        print(
            f"{algo.name:<16} {result.distance:>10.1f} "
            f"{result.access_time:>8.0f} {result.tune_in_time:>8d}"
        )

    best = DoubleNN().run(env, p)
    s, r = best.pair
    print(
        f"\nAnswer: visit s = ({s.x:.0f}, {s.y:.0f}) "
        f"then r = ({r.x:.0f}, {r.y:.0f}); "
        f"total distance {best.distance:.1f}"
    )

    # A mixed bag of client queries, served together: the shared-scan
    # executor advances the broadcast cycle once and feeds every request
    # whose next page just flew by, so the whole batch costs one scan.
    engine = QueryEngine(env)
    requests = [
        NNRequest(p),
        KNNRequest(p, k=3, phase=120.0),
        RangeRequest(p, radius=900.0, phase=60.0, channel="r"),
        WindowRequest(Rect(19_000.0, 19_000.0, 20_000.0, 20_000.0)),
    ]
    answers = engine.run_many(requests)
    print("\nMixed client batch via the shared-scan executor:")
    for req, ans in zip(requests, answers):
        kind = type(req).__name__.replace("Request", "")
        print(
            f"  {kind:<7} {len(ans.answers):>3} answer(s), "
            f"access {ans.access_time:>7.0f}, tune-in {ans.tune_in:>3d}"
        )

    # Same batch, different physical layout: a fixed-grid air index via
    # the BroadcastLayout seam.  Query semantics (and the answers' point
    # sets) are layout-independent; only the cost metrics move.
    grid_env = TNNEnvironment.build(
        s_points,
        r_points,
        SystemParameters(page_capacity=64),
        layout=make_layout("grid"),
    )
    grid_answers = QueryEngine(grid_env).run_many(requests)
    print("\nSame batch on a grid air index (layout seam):")
    for req, ans in zip(requests, grid_answers):
        kind = type(req).__name__.replace("Request", "")
        print(
            f"  {kind:<7} {len(ans.answers):>3} answer(s), "
            f"access {ans.access_time:>7.0f}, tune-in {ans.tune_in:>3d}"
        )

    # The unreliable-channel seam is discoverable: any of these names can
    # be passed to make_fault_model(...) / TNNEnvironment.build(loss=...)
    # (profile_hot_path.py --loss offers the same registry).
    print(
        "\nRegistered channel fault models: "
        + ", ".join(available_fault_models())
    )


if __name__ == "__main__":
    main()
