"""Trip planning in a skewed city: the paper's motivating scenario.

Mr. Smith is new in town.  He wants to mail postcards at a post office and
then have dinner at a restaurant, walking as little as possible.  Post
offices and restaurants are broadcast on two channels; his phone listens to
both at once.

This example uses *clustered* (CITY-like) data and shows why the
closed-form Approximate-TNN radius is dangerous off the uniform assumption,
while Hybrid-NN both stays exact and keeps the energy bill low.

Run:  python examples/trip_planning.py
"""

import random

from repro import ApproximateTNN, DoubleNN, HybridNN, TNNEnvironment, WindowBasedTNN
from repro.datasets import city_like, gaussian_clusters
from repro.geometry import Rect
from repro.rtree import tnn_oracle


def main() -> None:
    region = Rect(0.0, 0.0, 39_000.0, 39_000.0)
    post_offices = city_like(n=2_000, seed=7)
    restaurants = gaussian_clusters(
        4_000, clusters=18, seed=8, region=region, spread=0.03
    )
    env = TNNEnvironment.build(post_offices, restaurants)

    rng = random.Random(99)
    queries = [env.random_query_point(rng) for _ in range(30)]

    algorithms = {
        "window-based": WindowBasedTNN(),
        "approximate-tnn": ApproximateTNN(),
        "double-nn": DoubleNN(),
        "hybrid-nn": HybridNN(),
    }

    print("Clustered city, 2,000 post offices + 4,000 restaurants")
    print(f"{'algorithm':<16} {'mean access':>12} {'mean tune-in':>13} {'wrong answers':>14}")
    for name, algo in algorithms.items():
        access = tunein = wrong = 0.0
        for p in queries:
            result = algo.run(env, p, *env.random_phases(rng))
            _, _, want = tnn_oracle(p, env.s_tree, env.r_tree)
            access += result.access_time
            tunein += result.tune_in_time
            if result.failed or result.distance > want * (1 + 1e-9):
                wrong += 1
        n = len(queries)
        print(
            f"{name:<16} {access / n:>12.0f} {tunein / n:>13.1f} "
            f"{int(wrong):>10d}/{n}"
        )

    print(
        "\nNote: on clustered data the Approximate-TNN radius (derived for "
        "uniform points)\ncan miss the true pair entirely — the exact "
        "algorithms never do."
    )


if __name__ == "__main__":
    main()
